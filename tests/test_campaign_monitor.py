"""Tests for campaign-scale observability.

Covers the PR-8 stack: streaming P² quantiles and histogram merging
(`repro.obs.metrics`), the follow-mode trace tailer across rotation and
gzip boundaries (`repro.obs.events.TraceTailer`), worker capture /
parent replay (`repro.obs.capture`), the `CampaignMonitor` rollup and
dashboard (`repro.obs.campaign_monitor`), and the end-to-end agreement
between a pooled traced campaign's `campaign_summary.json` and its
returned `CampaignReport`.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import RunSpec, run_campaign
from repro.campaign.cache import ResultCache
from repro.core.policies.factory import make_policy
from repro.errors import ConfigurationError
from repro.obs import (
    ALERTS,
    BUS,
    REGISTRY,
    CampaignMonitor,
    CaptureConfig,
    CaptureSink,
    CellCapture,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricRegistry,
    P2Quantile,
    TraceTailer,
    disable_observability,
    enable_observability,
    iter_events,
    parse_openmetrics,
    parse_telemetry,
    render_dashboard,
    replay_capture,
    run_captured,
    to_openmetrics,
    validate_trace,
    write_summary,
)
from repro.obs.events import (
    AlertEvent,
    CampaignFinishEvent,
    CampaignStartEvent,
    CellCacheHitEvent,
    CellFinishEvent,
    CellHealthEvent,
    CellRetryEvent,
    CellStartEvent,
    RunStartEvent,
    SpanEndEvent,
    SpanStartEvent,
)
from repro.obs.spans import SPANS


@pytest.fixture(autouse=True)
def _clean_obs_state():
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    ALERTS.enabled = False
    ALERTS.reset()
    SPANS.reset()
    yield
    disable_observability()
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    ALERTS.reset()
    SPANS.reset()


@pytest.fixture
def specs(tiny_scenario, one_sunny_day):
    """Three distinct, picklable cells (pool-eligible policy strings)."""
    return [
        RunSpec(
            scenario=tiny_scenario,
            trace=one_sunny_day,
            policy=name,
            label=f"{name}-cell",
        )
        for name in ("baat", "e-buff", "baat-s")
    ]


# ----------------------------------------------------------------------
# P2 streaming quantiles
# ----------------------------------------------------------------------
class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_reports_zero(self):
        assert P2Quantile(0.5).value == 0.0

    def test_exact_for_first_five_observations(self):
        q = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            q.observe(x)
        assert q.value == pytest.approx(3.0)
        q.observe(2.0)
        q.observe(4.0)
        assert q.value == pytest.approx(3.0)

    @pytest.mark.parametrize("target", [0.5, 0.95, 0.99])
    def test_tracks_known_distribution(self, target):
        # A deterministic shuffle of 0..999 scaled to [0, 1): the true
        # quantile of the stream is simply `target`.
        q = P2Quantile(target)
        n = 1000
        for i in range(n):
            q.observe(((i * 389) % n) / n)
        assert q.value == pytest.approx(target, abs=0.03)

    def test_constant_stream(self):
        q = P2Quantile(0.95)
        for _ in range(100):
            q.observe(7.0)
        assert q.value == pytest.approx(7.0)


class TestHistogramMerge:
    def test_merge_into_empty_is_exact(self):
        src = Histogram("x")
        for v in (1.0, 2.0, 6.0):
            src.observe(v)
        dst = Histogram("x")
        dst.merge(src.to_dict())
        assert dst.to_dict() == pytest.approx(src.to_dict())

    def test_merge_empty_snapshot_is_a_noop(self):
        dst = Histogram("x")
        dst.observe(1.0)
        before = dst.to_dict()
        dst.merge(Histogram("y").to_dict())
        assert dst.to_dict() == before

    def test_merge_accumulates_counts_and_extremes(self):
        a = Histogram("x")
        a.observe(1.0)
        b = Histogram("x")
        b.observe(10.0)
        a.merge(b.to_dict())
        d = a.to_dict()
        assert d["count"] == 2
        assert d["min"] == 1.0
        assert d["max"] == 10.0
        assert d["total"] == 11.0

    def test_registry_merge_snapshot(self):
        src = MetricRegistry()
        src.counter("c").inc(3.0)
        src.gauge("g").set(0.5)
        src.histogram("h").observe(2.0)
        dst = MetricRegistry()
        dst.counter("c").inc(1.0)
        dst.merge_snapshot(src.snapshot())
        snap = dst.snapshot()
        assert snap["counters"]["c"] == 4.0
        assert snap["gauges"]["g"] == 0.5
        assert snap["histograms"]["h"]["count"] == 1

    def test_samples_are_bounded(self):
        reg = MetricRegistry(sample_limit=3)
        for t in range(5):
            reg.sample(float(t))
        assert [s["t"] for s in reg.samples] == [2.0, 3.0, 4.0]


# ----------------------------------------------------------------------
# Follow-mode trace tailer
# ----------------------------------------------------------------------
def _emit_cells(sink, start, n):
    for i in range(start, start + n):
        sink.emit(CellStartEvent(t=float(i + 1), label=f"cell{i}"))


class TestTraceTailer:
    def test_waits_for_the_file_to_appear(self, tmp_path):
        path = str(tmp_path / "late.jsonl")
        tailer = TraceTailer(path)
        assert tailer.drain() == []
        sink = JsonlSink(path, flush_every=1)
        _emit_cells(sink, 0, 3)
        sink.close()
        assert [e.label for e in tailer.drain()] == ["cell0", "cell1", "cell2"]

    def test_incremental_drains_no_dup_no_drop(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path, flush_every=1)
        tailer = TraceTailer(path)
        emitted, seen = 0, []
        for batch in (3, 5, 2):
            _emit_cells(sink, emitted, batch)
            emitted += batch
            seen.extend(e.label for e in tailer.drain())
        sink.close()
        seen.extend(e.label for e in tailer.drain())
        assert seen == [f"cell{i}" for i in range(10)]

    def test_partial_line_is_held_until_complete(self, tmp_path):
        path = str(tmp_path / "p.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "cell_start", "t": 1.0, "label": "a"}\n')
            fh.write('{"kind": "cell_st')
            fh.flush()
            tailer = TraceTailer(path)
            assert [e.label for e in tailer.drain()] == ["a"]
            fh.write('art", "t": 2.0, "label": "b"}\n')
            fh.flush()
            assert [e.label for e in tailer.drain()] == ["b"]

    def test_follows_rotation_mid_read(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        sink = JsonlSink(path, flush_every=1, rotate_events=4)
        tailer = TraceTailer(path)
        emitted, seen = 0, []
        for batch in (3, 4, 6):  # crosses two rotation boundaries
            _emit_cells(sink, emitted, batch)
            emitted += batch
            seen.extend(e.label for e in tailer.drain())
        sink.close()
        seen.extend(e.label for e in tailer.drain())
        assert seen == [f"cell{i}" for i in range(13)]
        assert tailer.n_segments_done >= 2

    def test_follows_gzip_segments(self, tmp_path):
        path = str(tmp_path / "g.jsonl.gz")
        sink = JsonlSink(path, flush_every=1, rotate_events=4)
        tailer = TraceTailer(path)
        emitted, seen = 0, []
        for batch in (2, 5, 4):
            _emit_cells(sink, emitted, batch)
            emitted += batch
            got = [e.label for e in tailer.drain()]
            # Per-event sync flush: even the open segment's events are
            # already drainable, not just rotated-away ones.
            assert got, "mid-stream gzip drain salvaged nothing"
            seen.extend(got)
        sink.close()
        seen.extend(e.label for e in tailer.drain())
        assert seen == [f"cell{i}" for i in range(11)]

    def test_gzip_resolved_from_uncompressed_name(self, tmp_path):
        base = str(tmp_path / "x.jsonl")
        sink = JsonlSink(base, compress=True, flush_every=1)
        _emit_cells(sink, 0, 3)
        sink.close()
        tailer = TraceTailer(base)  # no .gz suffix given
        assert len(tailer.drain()) == 3

    def test_matches_iter_events_after_the_fact(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        sink = JsonlSink(path, flush_every=1, rotate_events=5)
        _emit_cells(sink, 0, 17)
        sink.close()
        tailer = TraceTailer(path)
        drained = tailer.drain()
        replayed = list(iter_events(path))
        assert [e.label for e in drained] == [e.label for e in replayed]

    def test_skips_malformed_lines_unless_strict(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "cell_start", "t": 1.0, "label": "a"}\n')
            fh.write("not json at all\n")
            fh.write('{"kind": "no_such_kind", "t": 2.0}\n')
            fh.write('{"kind": "cell_start", "t": 3.0, "label": "b"}\n')
        assert [e.label for e in TraceTailer(path).drain()] == ["a", "b"]
        with pytest.raises((ValueError, ConfigurationError)):
            TraceTailer(path, strict=True).drain()


# ----------------------------------------------------------------------
# Worker capture and replay
# ----------------------------------------------------------------------
class TestCaptureReplay:
    def test_capture_sink_keeps_the_head(self):
        sink = CaptureSink(maxlen=3)
        for i in range(5):
            sink.emit(CellStartEvent(t=float(i), label=f"c{i}"))
        assert [e.label for e in sink.events] == ["c0", "c1", "c2"]
        assert sink.n_seen == 5
        assert sink.n_dropped == 2

    def _capture(self, events):
        return CellCapture(
            events=[
                {
                    **e.to_dict(),
                    "eid": e.eid,
                    "span_id": e.span_id,
                    "cause_id": e.cause_id,
                }
                for e in events
            ]
        )

    def test_replay_remaps_provenance_onto_parent_ids(self, tmp_path):
        capture = self._capture(
            [
                CellStartEvent(t=1.0, eid=7, label="w"),
                CellFinishEvent(t=2.0, eid=8, cause_id=7, span_id=0, label="w"),
            ]
        )
        mem = BUS.add_sink(MemorySink())
        try:
            n = replay_capture(capture, cell_span_id=99)
        finally:
            BUS.remove_sink(mem)
        assert n == 2
        first, second = mem.events
        assert first.eid != 7 and second.eid == first.eid + 1
        assert second.cause_id == first.eid
        # Span-less worker events anchor on the parent's cell span.
        assert first.span_id == 99
        assert second.span_id == 99

    def test_replay_skips_span_end_without_its_start(self):
        capture = self._capture(
            [SpanEndEvent(t=5.0, eid=42, span_id=41, span="deep_discharge")]
        )
        mem = BUS.add_sink(MemorySink())
        try:
            n = replay_capture(capture, cell_span_id=7)
        finally:
            BUS.remove_sink(mem)
        assert n == 0
        assert mem.events == []

    def test_replay_reparents_worker_spans_under_the_cell(self):
        capture = self._capture(
            [
                SpanStartEvent(
                    t=1.0, eid=10, span_id=10, span="deep_discharge",
                    node="node0",
                ),
                SpanEndEvent(
                    t=2.0, eid=11, span_id=10, span="deep_discharge",
                    node="node0",
                ),
            ]
        )
        mem = BUS.add_sink(MemorySink())
        try:
            replay_capture(capture, cell_span_id=77)
        finally:
            BUS.remove_sink(mem)
        start, end = mem.events
        assert start.parent_id == 77
        assert start.span_id == start.eid
        assert end.span_id == start.eid


# ----------------------------------------------------------------------
# CampaignMonitor rollups
# ----------------------------------------------------------------------
def _feed(monitor, events):
    for e in events:
        monitor.emit(e)


class TestCampaignMonitor:
    def test_progress_counters(self):
        mon = CampaignMonitor()
        assert mon.eta_s is None  # nothing known yet
        _feed(
            mon,
            [
                CampaignStartEvent(t=0.0, n_cells=4, n_workers=2),
                CellCacheHitEvent(t=0.1, label="a"),
                CellStartEvent(t=0.2, label="b"),
                CellStartEvent(t=0.2, label="c"),
                CellStartEvent(t=0.2, label="d"),
                CellRetryEvent(t=0.5, label="c", attempt=1),
                CellFinishEvent(t=1.0, label="b", ok=True, wall_s=0.8),
                CellFinishEvent(t=2.0, label="c", ok=False, wall_s=1.8),
            ],
        )
        assert mon.cached == 1
        assert mon.ok == 1
        assert mon.failed == 1
        assert mon.retries == 1
        assert mon.done == 3
        assert mon.in_flight == 1
        assert mon.remaining == 1
        assert mon.hit_rate == pytest.approx(0.25)
        assert mon.cells_per_s == pytest.approx(2 / 2.0)
        assert mon.eta_s == pytest.approx(1.0)
        _feed(
            mon,
            [
                CellFinishEvent(t=3.0, label="d", ok=True, wall_s=2.5),
                CampaignFinishEvent(
                    t=3.1, n_cells=4, ok=2, failed=1, cached=1, executed=3,
                    wall_s=3.1,
                ),
            ],
        )
        assert mon.finished
        assert mon.eta_s == 0.0
        summary = mon.summary()
        assert summary["cells"]["done"] == 4
        assert summary["campaign"]["wall_s"] == pytest.approx(3.1)
        assert summary["wall_time_s"]["count"] == 3

    def test_worker_run_timestamps_do_not_advance_the_clock(self):
        mon = CampaignMonitor()
        _feed(
            mon,
            [
                CampaignStartEvent(t=0.0, n_cells=2, n_workers=2),
                CellFinishEvent(t=0.5, label="a", ok=True, wall_s=0.4),
                # A replayed worker event deep into simulated time:
                RunStartEvent(t=86400.0, policy="baat"),
            ],
        )
        assert mon.t_last == pytest.approx(0.5)

    def test_health_rollup_tracks_worst_cell(self):
        mon = CampaignMonitor()
        _feed(
            mon,
            [
                CellHealthEvent(
                    t=1.0, label="mild", n_batteries=3, n_samples=30,
                    score_mean=0.2, score_max=0.3, worst="node1",
                    nat_max=0.01, ddt_max=0.0, dr_max=1.0, alerts=0,
                ),
                CellHealthEvent(
                    t=2.0, label="harsh", n_batteries=3, n_samples=30,
                    score_mean=0.4, score_max=0.9, worst="node2",
                    nat_max=0.05, ddt_max=0.2, dr_max=2.0, alerts=3,
                ),
            ],
        )
        health = mon.summary()["health"]
        assert health["cells_reported"] == 2
        assert health["batteries"] == 6
        assert health["score_max"] == pytest.approx(0.9)
        assert health["worst_cell"] == "harsh"
        assert health["worst_node"] == "node2"
        assert health["score_mean"] == pytest.approx(0.3)
        assert health["nat_max"] == pytest.approx(0.05)
        assert health["cell_alerts"] == 3

    def test_alert_lifecycle(self):
        mon = CampaignMonitor()
        fired = AlertEvent(t=1.0, rule="ddt_breach", node="node0",
                           severity="critical", value=0.4, threshold=0.25)
        _feed(mon, [fired])
        assert len(mon.active_alerts()) == 1
        _feed(
            mon,
            [AlertEvent(t=2.0, rule="ddt_breach", node="node0", cleared=True)],
        )
        assert mon.active_alerts() == []
        assert mon.alerts_fired == 1
        assert mon.alerts_cleared == 1

    def test_registry_exports_quantiles_to_openmetrics(self):
        mon = CampaignMonitor()
        _feed(
            mon,
            [
                CampaignStartEvent(t=0.0, n_cells=2, n_workers=1),
                CellFinishEvent(t=1.0, label="a", ok=True, wall_s=1.0),
                CellFinishEvent(t=2.0, label="b", ok=True, wall_s=3.0),
            ],
        )
        parsed = parse_openmetrics(to_openmetrics(mon.registry()))
        summary = parsed["summary"]["repro_campaign_cell_wall_s"]
        assert summary["count"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert 1.0 <= summary["p50"] <= 3.0
        assert parsed["gauge"]["repro_campaign_n_cells"] == 2.0

    def test_dashboard_renders_plain_and_ansi(self):
        mon = CampaignMonitor()
        _feed(
            mon,
            [
                CampaignStartEvent(t=0.0, n_cells=2, n_workers=2),
                CellFinishEvent(t=1.0, label="a", ok=True, wall_s=1.0),
            ],
        )
        plain = render_dashboard(mon.summary(), ansi=False)
        assert "1/2 cells" in plain
        assert "\x1b[" not in plain
        assert "\x1b[" in render_dashboard(mon.summary(), ansi=True)

    def test_write_summary_round_trips(self, tmp_path):
        mon = CampaignMonitor()
        _feed(mon, [CampaignStartEvent(t=0.0, n_cells=1, n_workers=1)])
        path = str(tmp_path / "campaign_summary.json")
        written = write_summary(mon, path)
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh) == written


# ----------------------------------------------------------------------
# End-to-end: pooled traced campaign vs its report
# ----------------------------------------------------------------------
class TestCampaignSummaryAgreement:
    def _run(self, specs, tmp_path, cache, workers=2):
        mon = CampaignMonitor()
        path = str(tmp_path / "trace.jsonl")
        enable_observability(path)
        BUS.add_sink(mon)
        try:
            report = run_campaign(
                specs, n_workers=workers, cache=cache, retries=0
            )
        finally:
            BUS.remove_sink(mon)
            disable_observability()
        return mon, report, path

    def test_pooled_campaign_summary_matches_report(
        self, specs, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        mon, report, path = self._run(specs, tmp_path, cache)
        summary = mon.summary()
        assert summary["cells"]["ok"] == report.n_executed
        assert summary["cells"]["failed"] == len(report.failures)
        assert summary["cells"]["cached"] == report.n_cache_hits
        assert summary["cells"]["done"] == len(report.outcomes)
        assert summary["cache"]["hit_rate"] == pytest.approx(
            report.n_cache_hits / len(report.outcomes)
        )
        wall = summary["wall_time_s"]
        assert wall["count"] == report.n_executed + len(report.failures)
        for key in ("p50", "p95", "p99"):
            assert wall["min"] <= wall[key] <= wall["max"]
        # The trace on disk is one coherent stream.
        assert validate_trace(path).ok
        # The monitor saw per-cell health from the worker fan-in.
        assert summary["health"]["cells_reported"] == report.n_executed
        assert summary["health"]["batteries"] > 0

    def test_cached_rerun_reports_full_hit_rate(self, specs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(specs, n_workers=1, cache=cache, retries=0)
        tmp2 = tmp_path / "second"
        tmp2.mkdir()
        mon, report, _ = self._run(specs, tmp2, cache, workers=1)
        assert report.n_cache_hits == len(report.outcomes)
        assert mon.summary()["cache"]["hit_rate"] == pytest.approx(1.0)
        assert mon.summary()["cells"]["executed"] == 0


# ----------------------------------------------------------------------
# The lean live-monitoring capture tier (--watch --capture monitoring)
# ----------------------------------------------------------------------
class TestMonitoringCapturePreset:
    def test_preset_shape(self):
        cfg = CaptureConfig.monitoring()
        assert cfg.metrics is False
        assert cfg.alerts and cfg.health
        parse_telemetry(cfg.telemetry)  # must be a valid tier spec

    def test_run_captured_keeps_worker_registry_dark(self):
        result, error, cap = run_captured(
            lambda: 42, CaptureConfig.monitoring()
        )
        assert (result, error) == (42, None)
        assert cap.metrics["counters"] == {}
        assert cap.metrics["histograms"] == {}

    def test_watch_without_trace_uses_lean_worker_capture(self, specs):
        # The monitor sink alone enables the bus, which selects the
        # traced worker fan-in protocol — no JSONL file involved.
        mon = BUS.add_sink(CampaignMonitor())
        try:
            report = run_campaign(
                specs,
                n_workers=2,
                cache=None,
                retries=0,
                capture=CaptureConfig.monitoring(),
            )
        finally:
            BUS.remove_sink(mon)
        assert not report.failures
        summary = mon.summary()
        assert summary["cells"]["done"] == len(specs)
        assert summary["cells"]["ok"] == len(specs)
        # Sampled battery telemetry still feeds per-cell health rollups.
        assert summary["health"]["cells_reported"] == len(specs)
        assert summary["health"]["batteries"] > 0
        wall = summary["wall_time_s"]
        assert wall["count"] == len(specs)


# ----------------------------------------------------------------------
# Satellite: no cache-miss accounting when caching is off
# ----------------------------------------------------------------------
class TestCacheMissAccountingDisabledCache:
    def test_no_miss_counter_or_storm_alert_with_cache_none(
        self, tiny_scenario, one_sunny_day
    ):
        specs = [
            RunSpec(
                scenario=tiny_scenario,
                trace=one_sunny_day,
                policy_factory=lambda: make_policy("e-buff"),
                label=f"cell{i}",
            )
            for i in range(4)
        ]
        enable_observability()
        try:
            run_campaign(specs, n_workers=1, cache=None, retries=0)
            miss_count = REGISTRY.counter("campaign/cache_misses").value
            storm = [
                a for a in ALERTS.history if a.rule == "cache_miss_storm"
            ]
        finally:
            disable_observability()
        assert miss_count == 0.0
        assert storm == []
