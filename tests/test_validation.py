"""Cross-validation tests: mechanistic aging model vs empirical curves.

The two lifetime representations were calibrated from different anchors
(the paper's six-month prototype measurement vs manufacturer datasheet
points), so their agreement is a genuine consistency check. Absolute
cycle counts are expected to differ — the prototype's batteries degraded
much faster than laboratory datasheet conditions — but the *shape*
(relative cycle life across DoD) must match.
"""

import pytest

from repro.analysis.validation import (
    simulated_cycle_life,
    validate_against_curves,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def points():
    return validate_against_curves(dods=(0.3, 0.5, 0.8))


class TestSimulatedCycleLife:
    def test_monotone_decreasing_in_dod(self, points):
        cycles = [p.simulated_cycles for p in points]
        assert cycles == sorted(cycles, reverse=True)

    def test_magnitudes_are_lead_acid_plausible(self, points):
        """Even a harshly calibrated VRLA lasts 100+ cycles at 80 % DoD
        and under 1000 at 30 %."""
        by_dod = {p.dod: p.simulated_cycles for p in points}
        assert 50 < by_dod[0.8] < 500
        assert 200 < by_dod[0.3] < 1500

    def test_rejects_extreme_dod(self):
        with pytest.raises(ConfigurationError):
            simulated_cycle_life(0.01)


class TestShapeAgreement:
    def test_relative_slope_matches_empirical(self, points):
        """The 0.3 -> 0.8 DoD cycle-life ratio must match the empirical
        family's within a factor of two (measured agreement ~10 %)."""
        sim_slope = points[0].simulated_cycles / points[-1].simulated_cycles
        emp_slope = points[0].empirical_cycles / points[-1].empirical_cycles
        assert sim_slope / emp_slope == pytest.approx(1.0, abs=0.5)

    def test_level_offset_is_consistent_across_dod(self, points):
        """The sim/empirical ratio should be roughly constant — a level
        calibration difference, not a shape disagreement."""
        ratios = [p.ratio for p in points]
        assert max(ratios) / min(ratios) < 1.5

    def test_manufacturer_selection(self):
        upg = validate_against_curves(dods=(0.5,), manufacturer="upg")[0]
        trojan = validate_against_curves(dods=(0.5,), manufacturer="trojan")[0]
        # Same simulation, different empirical baselines.
        assert upg.simulated_cycles == trojan.simulated_cycles
        assert upg.empirical_cycles < trojan.empirical_cycles

    def test_unknown_manufacturer(self):
        with pytest.raises(ConfigurationError):
            validate_against_curves(dods=(0.5,), manufacturer="acme")
