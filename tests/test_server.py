"""Unit tests for the server power model and DVFS."""

import pytest

from repro.datacenter.server import (
    BOOT_SECONDS,
    Server,
    ServerParams,
    ServerPowerState,
)
from repro.datacenter.vm import VM
from repro.datacenter.workloads import PAPER_WORKLOADS
from repro.errors import ConfigurationError


class TestParams:
    def test_rejects_peak_below_idle(self):
        with pytest.raises(ConfigurationError):
            ServerParams(idle_w=150.0, peak_w=100.0)

    def test_rejects_unsorted_ladder(self):
        with pytest.raises(ConfigurationError):
            ServerParams(freq_levels=(0.4, 1.0))

    def test_rejects_out_of_range_levels(self):
        with pytest.raises(ConfigurationError):
            ServerParams(freq_levels=(1.2, 0.8))

    def test_scaled(self):
        params = ServerParams().scaled(2.0)
        assert params.idle_w == 120.0
        assert params.peak_w == 300.0


class TestPower:
    def test_idle_power(self, server):
        assert server.power(0.0) == pytest.approx(server.params.idle_w)

    def test_peak_power(self, server):
        assert server.power(1.0) == pytest.approx(server.params.peak_w)

    def test_linear_in_utilization(self, server):
        half = server.power(0.5)
        expected = server.params.idle_w + 0.5 * (
            server.params.peak_w - server.params.idle_w
        )
        assert half == pytest.approx(expected)

    def test_dvfs_cuts_dynamic_power_superlinearly(self, server):
        full = server.power(1.0) - server.power(0.0)
        server.set_freq_index(3)  # 0.4x frequency
        throttled = server.power(1.0) - server.power(0.0)
        assert throttled < 0.4 * full

    def test_dvfs_trims_idle_mildly(self, server):
        idle_full = server.power(0.0)
        server.set_freq_index(3)
        idle_low = server.power(0.0)
        assert idle_low < idle_full
        assert idle_low > 0.5 * idle_full

    def test_down_server_draws_nothing(self, server):
        server.brownout()
        assert server.power(1.0) == 0.0

    def test_admin_off_draws_nothing(self, server):
        server.admin_off = True
        assert server.power(1.0) == 0.0

    def test_policy_off_draws_nothing(self, server):
        server.policy_off = True
        assert server.power(1.0) == 0.0

    def test_stalled_vm_power_adder(self, server):
        """An in-flight (stalled) VM adds copy-traffic power on its host."""
        vm = VM(name="m", workload=PAPER_WORKLOADS["web_serving"])
        server.attach(vm)
        base = server.power(0.0)
        vm.checkpoint()  # any stall engages the adder
        assert server.power(0.0) > base


class TestDVFS:
    def test_throttle_down_walks_the_ladder(self, server):
        levels = []
        while server.throttle_down():
            levels.append(server.frequency)
        assert levels == [0.8, 0.6, 0.4]

    def test_throttle_down_at_floor_returns_false(self, server):
        server.set_freq_index(3)
        assert not server.throttle_down()

    def test_throttle_up_restores(self, server):
        server.set_freq_index(2)
        server.throttle_up()
        assert server.frequency == 0.8

    def test_transitions_counted(self, server):
        server.throttle_down()
        server.throttle_up()
        assert server.dvfs_transitions == 2

    def test_set_same_index_not_counted(self, server):
        server.set_freq_index(0)
        assert server.dvfs_transitions == 0

    def test_bad_index_rejected(self, server):
        with pytest.raises(ConfigurationError):
            server.set_freq_index(9)


class TestAvailability:
    def test_brownout_checkpoints_vms(self, server, vm):
        server.attach(vm)
        server.brownout()
        assert server.state is ServerPowerState.DOWN
        assert vm.is_stalled

    def test_power_on_boots(self, server):
        server.brownout()
        server.power_on()
        assert server.state is ServerPowerState.BOOTING
        server.advance_state(BOOT_SECONDS)
        assert server.state is ServerPowerState.UP

    def test_downtime_accounted(self, server):
        server.brownout()
        server.advance_state(600.0)
        assert server.downtime_s == 600.0

    def test_admin_off_is_not_downtime(self, server):
        server.brownout()
        server.admin_off = True
        server.advance_state(600.0)
        assert server.downtime_s == 0.0

    def test_booting_draws_idle_and_does_no_work(self, server):
        server.brownout()
        server.power_on()
        assert server.power(1.0) == pytest.approx(server.params.idle_w)
        assert server.speed_factor() == 0.0

    def test_speed_factor_follows_frequency(self, server):
        server.set_freq_index(1)
        assert server.speed_factor() == 0.8
