"""Unit tests for lifetime analysis and reporting helpers."""

import pytest

from repro.analysis.lifetime import (
    estimate_lifetime_days,
    lifetime_for_policies,
    season_day_classes,
)
from repro.analysis.reporting import (
    format_table,
    improvement_percent,
    percent_change,
    ratio,
    reduction_percent,
)
from repro.errors import ConfigurationError
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass


class TestSeasonSampling:
    def test_deterministic(self):
        a = season_day_classes(0.5, 10, seed=1)
        b = season_day_classes(0.5, 10, seed=1)
        assert a == b

    def test_count(self):
        assert len(season_day_classes(0.5, 7, seed=1)) == 7

    def test_rejects_zero_days(self):
        with pytest.raises(ConfigurationError):
            season_day_classes(0.5, 0, seed=1)

    def test_sunshine_changes_mix(self):
        dark = season_day_classes(0.1, 50, seed=1)
        bright = season_day_classes(0.95, 50, seed=1)
        assert bright.count(DayClass.SUNNY) > dark.count(DayClass.SUNNY)


class TestLifetimeEstimation:
    @pytest.fixture
    def scenario(self, tiny_scenario):
        return tiny_scenario

    def test_estimate_positive_and_finite(self, scenario):
        est = estimate_lifetime_days("e-buff", scenario, 0.5, n_days=2)
        assert 0.0 < est.lifetime_days < float("inf")
        assert est.worst_fade_per_day >= est.mean_fade_per_day > 0.0

    def test_explicit_day_classes(self, scenario):
        est = estimate_lifetime_days(
            "e-buff", scenario, day_classes=[DayClass.SUNNY, DayClass.SUNNY]
        )
        assert est.season_result.duration_s == pytest.approx(2 * 86400.0)

    def test_initial_fade_shortens_remaining_life(self, tiny_scenario):
        from dataclasses import replace

        fresh = tiny_scenario
        old = replace(tiny_scenario, initial_fade=0.15)
        days = [DayClass.CLOUDY, DayClass.CLOUDY]
        e_fresh = estimate_lifetime_days("e-buff", fresh, day_classes=days)
        e_old = estimate_lifetime_days("e-buff", old, day_classes=days)
        assert e_old.lifetime_days < e_fresh.lifetime_days

    def test_policies_share_identical_weather(self, scenario):
        estimates = lifetime_for_policies(
            scenario, 0.5, n_days=2, policies=("e-buff", "baat")
        )
        assert set(estimates) == {"e-buff", "baat"}
        a = estimates["e-buff"].season_result
        b = estimates["baat"].season_result
        assert a.duration_s == b.duration_s

    def test_years_property(self, scenario):
        est = estimate_lifetime_days("e-buff", scenario, 0.5, n_days=2)
        assert est.lifetime_years == pytest.approx(est.lifetime_days / 365.0)


class TestReporting:
    def test_ratio_and_changes(self):
        assert ratio(3.0, 2.0) == 1.5
        assert percent_change(3.0, 2.0) == pytest.approx(50.0)
        assert improvement_percent(1.69, 1.0) == pytest.approx(69.0)
        assert reduction_percent(0.74, 1.0) == pytest.approx(26.0)

    def test_ratio_zero_baseline(self):
        assert ratio(1.0, 0.0) == float("inf")
        assert ratio(0.0, 0.0) == 1.0

    def test_format_table_alignment(self):
        text = format_table(
            ("name", "value"), [("a", 1.5), ("long-name", 2.25)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.500" in text
        assert "2.250" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(("a", "b"), [("only-one",)])
