"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, _resolve_experiment, build_parser, main


class TestResolution:
    def test_full_name(self):
        assert _resolve_experiment("fig14_lifetime_sunshine") == "fig14_lifetime_sunshine"

    def test_prefix(self):
        assert _resolve_experiment("fig14") == "fig14_lifetime_sunshine"

    def test_bare_number(self):
        assert _resolve_experiment("14") == "fig14_lifetime_sunshine"
        assert _resolve_experiment("3") == "fig03_voltage"

    def test_unknown(self):
        with pytest.raises(SystemExit):
            _resolve_experiment("fig99")

    def test_ambiguous(self):
        with pytest.raises(SystemExit):
            _resolve_experiment("fig1")  # fig10, fig12, ... all match


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.day == "cloudy"
        assert args.fade == 0.0
        assert args.days == 1

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig10", "--full"])
        assert args.experiment == "fig10"
        assert args.full


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "[fig10]" in out
        assert "hoppecke" in out

    def test_compare_executes(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--day",
                    "sunny",
                    "--days",
                    "1",
                    "--dt",
                    "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        for name in ("e-buff", "baat-s", "baat-h", "baat"):
            assert name in out
