"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, _resolve_experiment, build_parser, main


class TestResolution:
    def test_full_name(self):
        assert _resolve_experiment("fig14_lifetime_sunshine") == "fig14_lifetime_sunshine"

    def test_prefix(self):
        assert _resolve_experiment("fig14") == "fig14_lifetime_sunshine"

    def test_bare_number(self):
        assert _resolve_experiment("14") == "fig14_lifetime_sunshine"
        assert _resolve_experiment("3") == "fig03_voltage"

    def test_unknown(self):
        with pytest.raises(SystemExit):
            _resolve_experiment("fig99")

    def test_ambiguous(self):
        with pytest.raises(SystemExit):
            _resolve_experiment("fig1")  # fig10, fig12, ... all match


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.day == "cloudy"
        assert args.fade == 0.0
        assert args.days == 1

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig10", "--full"])
        assert args.experiment == "fig10"
        assert args.full

    def test_trace_accepts_file_or_diff(self):
        args = build_parser().parse_args(["trace", "run.jsonl"])
        assert args.args == ["run.jsonl"]
        args = build_parser().parse_args(["trace", "diff", "a.jsonl", "b.jsonl"])
        assert args.args == ["diff", "a.jsonl", "b.jsonl"]

    def test_health_defaults(self):
        args = build_parser().parse_args(["health"])
        assert args.source is None
        assert args.policy == "baat"
        args = build_parser().parse_args(["health", "run.jsonl"])
        assert args.source == "run.jsonl"

    def test_export_format_choices(self):
        args = build_parser().parse_args(["export", "--format", "csv"])
        assert args.format == "csv"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "--format", "yaml"])

    def test_profile_flag_three_forms(self):
        assert build_parser().parse_args(["stats"]).profile is None
        assert build_parser().parse_args(["stats", "--profile"]).profile == ""
        args = build_parser().parse_args(["stats", "--profile", "out.pstats"])
        assert args.profile == "out.pstats"


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "[fig10]" in out
        assert "hoppecke" in out

    def test_compare_executes(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--day",
                    "sunny",
                    "--days",
                    "1",
                    "--dt",
                    "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        for name in ("e-buff", "baat-s", "baat-h", "baat"):
            assert name in out


@pytest.fixture(scope="module")
def trace_pair(tmp_path_factory):
    """Two traced single-day runs (sunny vs rainy) for replay commands."""
    directory = tmp_path_factory.mktemp("cli-traces")
    path_a = str(directory / "sunny.jsonl")
    path_b = str(directory / "rainy.jsonl")
    assert main(["stats", "--day", "sunny", "--dt", "300", "--trace", path_a]) == 0
    assert main(["stats", "--day", "rainy", "--dt", "300", "--trace", path_b]) == 0
    return path_a, path_b


class TestObservabilityCommands:
    def test_trace_single_file_summary(self, trace_pair, capsys):
        path_a, _ = trace_pair
        assert main(["trace", path_a, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "event(s), t in [" in out
        assert "battery_sample" in out

    def test_trace_diff(self, trace_pair, capsys):
        path_a, path_b = trace_pair
        assert main(["trace", "diff", path_a, path_b]) == 0
        out = capsys.readouterr().out
        assert "event counts" in out
        assert "per-battery aging" in out
        assert "alert events: A" in out

    def test_trace_diff_usage_error(self):
        with pytest.raises(SystemExit):
            main(["trace", "diff", "only-one.jsonl"])

    def test_health_replay(self, trace_pair, capsys):
        path_a, _ = trace_pair
        assert main(["health", path_a]) == 0
        out = capsys.readouterr().out
        assert "fleet health" in out
        assert "node0" in out
        assert "alerts" in out

    def test_health_missing_trace_exits(self):
        with pytest.raises(SystemExit):
            main(["health", "no-such-trace.jsonl"])

    def test_health_live_run(self, capsys):
        assert main(["health", "--day", "sunny", "--dt", "300"]) == 0
        out = capsys.readouterr().out
        assert "baat on 1 x sunny day(s)" in out
        assert "fleet health" in out
        assert "EOL (d)" in out

    def test_export_openmetrics_stdout(self, capsys):
        assert main(["export", "--day", "sunny", "--dt", "300"]) == 0
        out = capsys.readouterr().out
        assert "# EOF" in out
        assert "repro_" in out
        assert "phase_" in out  # step-phase timers made it into the export

    def test_export_csv_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.csv"
        assert (
            main(
                [
                    "export", "--format", "csv", "--out", str(out_path),
                    "--day", "sunny", "--dt", "300",
                ]
            )
            == 0
        )
        assert "wrote csv export" in capsys.readouterr().out
        assert out_path.read_text(encoding="utf-8").startswith("metric,field,value")

    def test_profile_prints_hot_functions(self, capsys):
        assert main(["stats", "--day", "sunny", "--dt", "300", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (top 15 by cumulative time):" in out
        # leaf view: the array kernels surface by internal time too
        assert "profile (top 15 by tottime):" in out

    def test_profile_dump_to_file(self, tmp_path, capsys):
        import pstats

        target = tmp_path / "run.pstats"
        assert main(
            ["stats", "--day", "sunny", "--dt", "300",
             "--profile", str(target)]
        ) == 0
        out = capsys.readouterr().out
        assert f"profile written to {target}" in out
        assert "by cumulative time" not in out  # dump replaces the print
        stats = pstats.Stats(str(target))  # loadable by pstats tooling
        assert stats.total_calls > 0

    def test_profile_file_with_trace_prints_both_lines(
        self, tmp_path, capsys
    ):
        target = tmp_path / "run.pstats"
        trace = tmp_path / "run.jsonl"
        assert main(
            ["compare", "--day", "sunny", "--dt", "300", "--days", "1",
             "--trace", str(trace), "--profile", str(target)]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry event(s)" in out
        assert f"profile written to {target}" in out
        assert target.exists()


class TestProvenanceCommands:
    def test_trace_validate_clean_trace(self, trace_pair, capsys):
        path_a, _ = trace_pair
        assert main(["trace", "validate", path_a]) == 0
        out = capsys.readouterr().out
        assert "-> OK" in out

    def test_trace_validate_flags_corruption(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "no_such_kind", "t": 0.0}\n')
        assert main(["trace", "validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "unknown event kind" in out

    def test_trace_validate_usage_error(self):
        with pytest.raises(SystemExit):
            main(["trace", "validate"])

    def test_explain_prints_chains_and_aggregates(self, trace_pair, capsys):
        _, path_b = trace_pair  # rainy day: the monitor acts
        assert main(["explain", path_b]) == 0
        out = capsys.readouterr().out
        assert "action triggers" in out
        assert "time in span" in out

    def test_explain_filters_by_action_kind(self, trace_pair, capsys):
        _, path_b = trace_pair
        assert main(["explain", path_b, "--action", "slowdown_action"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_explain_single_event(self, trace_pair, capsys):
        from repro.obs.provenance import ProvenanceIndex

        _, path_b = trace_pair
        index = ProvenanceIndex.from_trace(path_b)
        assert index.actions, "rainy trace must contain actions"
        eid = index.actions[0]
        assert main(["explain", path_b, "--event", str(eid)]) == 0
        out = capsys.readouterr().out
        assert f"(#{eid})" in out

    def test_explain_unknown_event_exits(self, trace_pair):
        path_a, _ = trace_pair
        with pytest.raises(SystemExit):
            main(["explain", path_a, "--event", "999999999"])

    def test_explain_missing_trace_exits(self):
        with pytest.raises(SystemExit):
            main(["explain", "no-such-trace.jsonl"])

    def test_trace_gzip_flag_round_trips(self, tmp_path, capsys):
        path = str(tmp_path / "gz.jsonl")
        assert (
            main(
                [
                    "stats", "--day", "sunny", "--dt", "300",
                    "--trace", path, "--trace-gzip",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["trace", "validate", path]) == 0
        assert main(["explain", path]) == 0

    def test_trace_rotate_mb_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "stats", "--day", "sunny", "--dt", "300",
                    "--trace", "x.jsonl", "--trace-rotate-mb", "0",
                ]
            )
