"""Smoke + shape tests for the ablation experiments."""

import pytest

from repro.experiments import ablation_architecture, ablation_baat


class TestBaatAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_baat.run(quick=True)

    def test_all_variants_present(self, result):
        labels = [row[0] for row in result.rows]
        assert "baat (full)" in labels
        assert "e-buff (no BAAT at all)" in labels
        assert len(labels) == 6

    def test_full_baat_beats_ebuff_on_aging(self, result):
        assert result.headline["full BAAT aging cut vs e-Buff %"] > 10.0

    def test_every_variant_still_beats_ebuff(self, result):
        """No single knockout collapses to the unmanaged baseline."""
        by_label = {row[0]: row for row in result.rows}
        ebuff_fade = by_label["e-buff (no BAAT at all)"][2]
        for label, row in by_label.items():
            if label == "e-buff (no BAAT at all)":
                continue
            assert row[2] < ebuff_fade


class TestArchitectureAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_architecture.run(quick=True)

    def test_matrix_complete(self, result):
        cells = {(row[0], row[1]) for row in result.rows}
        assert cells == {
            ("per-server", "e-buff"),
            ("per-server", "baat"),
            ("rack-pool", "e-buff"),
            ("rack-pool", "baat"),
        }

    def test_pooling_cuts_aging_spread(self, result):
        assert result.headline["e-Buff aging-spread cut by pooling %"] > 20.0

    def test_baat_helps_on_both_architectures(self, result):
        by_cell = {(row[0], row[1]): row for row in result.rows}
        for arch in ("per-server", "rack-pool"):
            assert by_cell[(arch, "baat")][3] < by_cell[(arch, "e-buff")][3]
