"""Property-based tests for the aging metrics (hypothesis)."""

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.params import BatteryParams
from repro.metrics.accumulator import MetricsAccumulator
from repro.metrics.snapshot import AgingMetrics
from repro.metrics.weighted import EQUAL_WEIGHTS, node_aging_score

PARAMS = BatteryParams()

samples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0),     # soc
        st.floats(min_value=-20.0, max_value=20.0),  # current
        st.floats(min_value=1.0, max_value=7200.0),  # dt
    ),
    min_size=0,
    max_size=40,
)


def metrics_of(observations) -> AgingMetrics:
    acc = MetricsAccumulator()
    for soc, current, dt in observations:
        acc.observe(soc, current, dt, PARAMS.reference_current)
    return AgingMetrics.from_accumulator(
        acc, PARAMS.lifetime_ah_throughput, PARAMS.reference_current
    )


class TestMetricRanges:
    @settings(max_examples=80, deadline=None)
    @given(observations=samples)
    def test_all_metrics_in_valid_ranges(self, observations):
        m = metrics_of(observations)
        assert m.nat >= 0.0
        assert m.cf >= 0.0 or math.isinf(m.cf)
        assert m.pc == 0.0 or 0.25 <= m.pc <= 1.0
        assert 0.0 <= m.ddt <= 1.0
        assert m.dr_mean >= 0.0
        assert m.dr_peak >= m.dr_mean - 1e-9 or m.dr_peak == 0.0
        assert 0.0 <= m.dr_low_soc_exposure <= 1.0
        assert 0.0 <= m.cf_deficit <= 1.0

    @settings(max_examples=80, deadline=None)
    @given(observations=samples)
    def test_region_shares_partition_discharge(self, observations):
        m = metrics_of(observations)
        total = sum(m.region_shares.values())
        # Shares either partition the discharged charge (sum 1) or are
        # entirely absent (sum 0) — never anything in between.
        assert total == pytest.approx(1.0) or total == 0.0

    @settings(max_examples=80, deadline=None)
    @given(observations=samples)
    def test_score_nonnegative_and_finite(self, observations):
        m = metrics_of(observations)
        score = node_aging_score(m, EQUAL_WEIGHTS)
        assert 0.0 <= score <= 1.0 + 1e-9


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(observations=samples, extra_hours=st.floats(min_value=0.1, max_value=10.0))
    def test_nat_monotone_under_more_discharge(self, observations, extra_hours):
        base = metrics_of(observations)
        extended = metrics_of(
            list(observations) + [(0.5, 5.0, extra_hours * 3600.0)]
        )
        assert extended.nat >= base.nat

    @settings(max_examples=60, deadline=None)
    @given(observations=samples, extra_hours=st.floats(min_value=0.1, max_value=10.0))
    def test_ddt_rises_with_deep_residence(self, observations, extra_hours):
        base = metrics_of(observations)
        extended = metrics_of(list(observations) + [(0.1, 0.0, extra_hours * 3600.0)])
        assert extended.ddt >= base.ddt - 1e-9

