"""Property-based tests for the battery substrate (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.params import BatteryParams
from repro.battery.peukert import peukert_factor
from repro.battery.unit import BatteryUnit
from repro.battery.voltage import VoltageModel

PARAMS = BatteryParams()

socs = st.floats(min_value=0.0, max_value=1.0)
fades = st.floats(min_value=0.0, max_value=0.5)
currents = st.floats(min_value=0.0, max_value=70.0)
powers = st.floats(min_value=0.0, max_value=500.0)
durations = st.floats(min_value=1.0, max_value=3600.0)


class TestVoltageInvariants:
    @given(soc=socs, fade=fades)
    def test_ocv_within_physical_window(self, soc, fade):
        model = VoltageModel(PARAMS)
        v = model.ocv(soc, fade)
        assert PARAMS.ocv_empty - 1e-9 <= v <= PARAMS.ocv_full + 1e-9

    @given(soc=socs, fade=fades, current=currents)
    def test_discharge_never_raises_voltage(self, soc, fade, current):
        model = VoltageModel(PARAMS)
        assert model.terminal_voltage(soc, current, fade) <= model.ocv(soc, fade) + 1e-9

    @given(soc=socs, fade=fades, current=currents)
    def test_charge_never_lowers_voltage(self, soc, fade, current):
        model = VoltageModel(PARAMS)
        assert model.terminal_voltage(soc, -current, fade) >= model.ocv(soc, fade) - 1e-9

    @given(s1=socs, s2=socs, fade=fades)
    def test_ocv_monotone_in_soc(self, s1, s2, fade):
        model = VoltageModel(PARAMS)
        lo, hi = min(s1, s2), max(s1, s2)
        assert model.ocv(lo, fade) <= model.ocv(hi, fade) + 1e-12


class TestPeukertInvariants:
    @given(current=currents)
    def test_factor_at_least_one(self, current):
        assert peukert_factor(current, PARAMS) >= 1.0

    @given(i1=currents, i2=currents)
    def test_factor_monotone(self, i1, i2):
        lo, hi = min(i1, i2), max(i1, i2)
        assert peukert_factor(lo, PARAMS) <= peukert_factor(hi, PARAMS) + 1e-12


class TestBatteryUnitInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(st.sampled_from(["d", "c", "r"]), powers, durations),
            min_size=1,
            max_size=25,
        )
    )
    def test_soc_always_bounded_and_fade_monotone(self, steps):
        battery = BatteryUnit(PARAMS)
        last_fade = 0.0
        for kind, power, dt in steps:
            if kind == "d":
                battery.discharge(power, dt)
            elif kind == "c":
                battery.charge(power, dt)
            else:
                battery.rest(dt)
            assert 0.0 <= battery.soc <= 1.0
            assert battery.soc >= PARAMS.cutoff_soc - 1e-9 or battery.soc <= 1.0
            assert battery.capacity_fade >= last_fade - 1e-15
            last_fade = battery.capacity_fade
            assert battery.effective_capacity_ah <= PARAMS.capacity_ah + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(power=st.floats(min_value=1.0, max_value=400.0), dt=durations)
    def test_delivered_never_exceeds_request(self, power, dt):
        battery = BatteryUnit(PARAMS)
        result = battery.discharge(power, dt)
        assert result.delivered_power_w <= power * 1.01
        assert result.current_a >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(power=st.floats(min_value=1.0, max_value=400.0), dt=durations)
    def test_charge_absorbed_never_exceeds_offer(self, power, dt):
        battery = BatteryUnit(PARAMS, initial_soc=0.4)
        result = battery.charge(power, dt)
        assert result.delivered_power_w <= power + 1e-9
        assert result.gassing_current_a >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        cycles=st.integers(min_value=1, max_value=5),
        power=st.floats(min_value=20.0, max_value=150.0),
    )
    def test_energy_out_never_exceeds_energy_in_plus_initial(self, cycles, power):
        """Thermodynamics: cycling cannot create energy. Starting full,
        total output is bounded by input plus one full charge."""
        battery = BatteryUnit(PARAMS)
        initial_wh = PARAMS.nominal_energy_wh
        for _ in range(cycles):
            battery.discharge(power, 3600.0 * 4)
            battery.charge(power, 3600.0 * 4)
        assert battery.energy_out_wh <= battery.energy_in_wh + initial_wh + 1e-6
