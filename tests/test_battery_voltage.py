"""Unit tests for the terminal-voltage model."""

import pytest

from repro.battery.params import BatteryParams
from repro.battery.voltage import VoltageModel


@pytest.fixture
def model(params):
    return VoltageModel(params)


class TestOCV:
    def test_full_charge_matches_param(self, model, params):
        assert model.ocv(1.0) == pytest.approx(params.ocv_full)

    def test_empty_matches_param(self, model, params):
        assert model.ocv(0.0) == pytest.approx(params.ocv_empty)

    def test_linear_midpoint(self, model, params):
        expected = (params.ocv_full + params.ocv_empty) / 2.0
        assert model.ocv(0.5) == pytest.approx(expected)

    def test_monotone_in_soc(self, model):
        values = [model.ocv(s / 10.0) for s in range(11)]
        assert values == sorted(values)

    def test_fade_lowers_full_charge_voltage(self, model):
        assert model.ocv(1.0, capacity_fade=0.14) < model.ocv(1.0, capacity_fade=0.0)

    def test_fade_drop_is_superlinear(self, model):
        """Doubling the fade should more than double the voltage drop
        (the paper's accelerating droop)."""
        v0 = model.ocv(1.0, 0.0)
        drop1 = v0 - model.ocv(1.0, 0.07)
        drop2 = v0 - model.ocv(1.0, 0.14)
        assert drop2 > 2.0 * drop1

    def test_paper_nine_percent_drop_at_fourteen_percent_fade(self, model):
        """Fig. 3 anchor: ~9 % voltage drop co-occurs with ~14 % fade."""
        v0 = model.ocv(1.0, 0.0)
        v6 = model.ocv(1.0, 0.14)
        drop = 1.0 - v6 / v0
        assert 0.06 < drop < 0.12

    def test_window_never_inverts_at_extreme_fade(self, model, params):
        assert model.ocv(1.0, capacity_fade=0.95) >= params.ocv_empty


class TestTerminalVoltage:
    def test_discharge_sags_below_ocv(self, model):
        assert model.terminal_voltage(0.8, 10.0) < model.ocv(0.8)

    def test_charge_rises_above_ocv(self, model):
        assert model.terminal_voltage(0.8, -10.0) > model.ocv(0.8)

    def test_sag_proportional_to_resistance(self, model, params):
        sag = model.ocv(0.8) - model.terminal_voltage(0.8, 10.0)
        assert sag == pytest.approx(10.0 * params.internal_resistance_ohm)

    def test_resistance_growth_deepens_sag(self, model):
        fresh = model.terminal_voltage(0.8, 10.0, resistance_growth=0.0)
        aged = model.terminal_voltage(0.8, 10.0, resistance_growth=0.5)
        assert aged < fresh

    def test_low_soc_knee_adds_extra_sag(self, model, params):
        """Below the knee an additional concentration-polarisation sag
        applies on discharge."""
        ohmic_only = model.ocv(0.1) - 10.0 * params.internal_resistance_ohm
        assert model.terminal_voltage(0.1, 10.0) < ohmic_only

    def test_no_knee_while_charging(self, model, params):
        expected = model.ocv(0.1) + 10.0 * params.internal_resistance_ohm
        assert model.terminal_voltage(0.1, -10.0) == pytest.approx(expected)


class TestMaxDischargeCurrent:
    def test_positive_for_healthy_battery(self, model):
        assert model.max_discharge_current(0.9) > 0.0

    def test_zero_when_ocv_at_cutoff(self, params):
        low = BatteryParams(cutoff_voltage=12.0)
        model = VoltageModel(low)
        assert model.max_discharge_current(0.1) == 0.0

    def test_shrinks_with_age(self, model):
        fresh = model.max_discharge_current(0.5)
        aged = model.max_discharge_current(0.5, capacity_fade=0.15, resistance_growth=0.3)
        assert aged < fresh
