"""Unit tests for the CC-CV charger model."""

import pytest

from repro.battery.charger import Charger, ChargerParams
from repro.errors import ConfigurationError


@pytest.fixture
def charger(params):
    return Charger(params)


class TestChargerParams:
    def test_rejects_nonpositive_bulk_limit(self):
        with pytest.raises(ConfigurationError):
            ChargerParams(max_current_fraction_c=0.0)

    def test_rejects_bad_taper_start(self):
        with pytest.raises(ConfigurationError):
            ChargerParams(taper_start_soc=1.0)


class TestAcceptance:
    def test_bulk_limit_is_c_over_five(self, charger, params):
        assert charger.max_current == pytest.approx(0.2 * params.capacity_ah)

    def test_full_bulk_below_taper(self, charger):
        assert charger.acceptance_current(0.5) == pytest.approx(charger.max_current)

    def test_taper_reduces_acceptance(self, charger):
        assert charger.acceptance_current(0.95) < charger.max_current

    def test_float_at_full(self, charger):
        assert charger.acceptance_current(1.0) == pytest.approx(charger.float_current)

    def test_monotone_decreasing_through_taper(self, charger):
        values = [charger.acceptance_current(s) for s in (0.85, 0.90, 0.95, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_aged_battery_accepts_less(self, charger):
        assert charger.acceptance_current(0.5, capacity_fade=0.2) < (
            charger.acceptance_current(0.5, capacity_fade=0.0)
        )


class TestCoulombicEfficiency:
    def test_nominal_below_gassing(self, charger, params):
        assert charger.coulombic_efficiency(0.5) == pytest.approx(
            params.coulombic_efficiency
        )

    def test_falls_above_gassing_soc(self, charger, params):
        assert charger.coulombic_efficiency(0.97) < params.coulombic_efficiency

    def test_floor_at_full(self, charger):
        assert charger.coulombic_efficiency(1.0) == pytest.approx(0.60)

    def test_monotone_nonincreasing(self, charger):
        values = [charger.coulombic_efficiency(s / 20.0) for s in range(21)]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-12
