"""Tests for the foundational modules: units, rng, errors."""

import pytest

from repro import errors, units
from repro.rng import DEFAULT_SEED, make_rng, spawn, stream_seed


class TestUnits:
    def test_time_conversions(self):
        assert units.hours(2) == 7200.0
        assert units.minutes(3) == 180.0
        assert units.days(1) == 86400.0
        assert units.months(1) == pytest.approx(30.4375 * 86400.0)
        assert units.seconds_to_hours(7200.0) == 2.0
        assert units.seconds_to_days(86400.0) == 1.0

    def test_charge_conversions_roundtrip(self):
        assert units.ah_to_amp_seconds(units.amp_seconds_to_ah(12345.0)) == pytest.approx(
            12345.0
        )

    def test_energy_conversions(self):
        assert units.wh_to_joules(1.0) == 3600.0
        assert units.joules_to_wh(3600.0) == 1.0
        assert units.kwh_to_wh(2.5) == 2500.0
        assert units.wh_to_kwh(2500.0) == 2.5

    def test_clamp(self):
        assert units.clamp(5.0, 0.0, 1.0) == 1.0
        assert units.clamp(-5.0, 0.0, 1.0) == 0.0
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)


class TestRng:
    def test_same_seed_same_stream(self):
        a = spawn(1, "weather")
        b = spawn(1, "weather")
        assert a.random() == b.random()

    def test_different_names_independent(self):
        a = spawn(1, "weather")
        b = spawn(1, "workload")
        assert a.random() != b.random()

    def test_different_seeds_differ(self):
        assert spawn(1, "x").random() != spawn(2, "x").random()

    def test_stream_seed_stable(self):
        assert stream_seed(7, "battery/0") == stream_seed(7, "battery/0")
        assert stream_seed(7, "battery/0") != stream_seed(7, "battery/1")

    def test_stream_seed_fits_numpy(self):
        seed = stream_seed(DEFAULT_SEED, "anything")
        assert 0 <= seed < 2**63
        make_rng(seed)  # must not raise


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.BatteryError,
            errors.BatteryCutoffError,
            errors.BatteryEndOfLifeError,
            errors.SchedulingError,
            errors.MigrationError,
            errors.SimulationError,
            errors.TraceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_migration_is_a_scheduling_error(self):
        assert issubclass(errors.MigrationError, errors.SchedulingError)

    def test_cutoff_is_a_battery_error(self):
        assert issubclass(errors.BatteryCutoffError, errors.BatteryError)

    def test_single_catch_covers_everything(self):
        try:
            raise errors.MigrationError("vm stuck")
        except errors.ReproError as caught:
            assert "vm stuck" in str(caught)
