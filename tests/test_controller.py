"""Unit tests for the BAAT controller (ranking, windows, sensing)."""

import pytest

from repro.core.controller import BAATController
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.metrics.weighted import EQUAL_WEIGHTS
from repro.units import hours


@pytest.fixture
def cluster():
    return Cluster([Node.build(f"node{i}") for i in range(3)])


@pytest.fixture
def controller(cluster):
    return BAATController(cluster)


def stress(node, hours_deep=4.0):
    """Discharge a node's battery deep and log it in the tracker."""
    for _ in range(int(hours_deep * 4)):
        node.battery.discharge(120.0, 900.0)
        node.observe_battery(900.0)


class TestSensing:
    def test_log_sensors_fills_power_table(self, controller, cluster):
        controller.log_sensors()
        assert len(controller.power_table) == len(cluster)

    def test_window_metrics_start_neutral(self, controller, cluster):
        for node in cluster:
            m = controller.window_metrics(node)
            assert m.nat == 0.0

    def test_reset_window_clears_history(self, controller, cluster):
        node = cluster.nodes[0]
        stress(node)
        assert controller.window_metrics(node).nat > 0.0
        controller.reset_window(node)
        assert controller.window_metrics(node).nat == 0.0


class TestRanking:
    def test_stressed_node_ranks_last(self, controller, cluster):
        stress(cluster.node("node1"))
        ranked = controller.rank_nodes(EQUAL_WEIGHTS)
        assert ranked[-1][0].name == "node1"
        assert ranked[-1][1] > ranked[0][1]

    def test_slowest_aging_node_excludes(self, controller, cluster):
        stress(cluster.node("node1"))
        best = controller.slowest_aging_node(exclude=("node0",))
        assert best is not None
        assert best.name not in ("node0", "node1")

    def test_fastest_aging_node(self, controller, cluster):
        stress(cluster.node("node2"))
        worst = controller.fastest_aging_node()
        assert worst.name == "node2"

    def test_ties_break_by_name(self, controller):
        ranked = controller.rank_nodes()
        names = [n.name for n, _ in ranked]
        assert names == sorted(names)

    def test_down_nodes_excluded_by_default(self, controller, cluster):
        cluster.node("node0").server.brownout()
        ranked = controller.rank_nodes()
        assert all(n.name != "node0" for n, _ in ranked)

    def test_down_nodes_included_on_request(self, controller, cluster):
        cluster.node("node0").server.brownout()
        ranked = controller.rank_nodes(up_only=False)
        assert any(n.name == "node0" for n, _ in ranked)
