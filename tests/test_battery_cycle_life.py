"""Unit tests for the cycle-life-vs-DoD curves (Fig. 10 data)."""

import pytest

from repro.battery.cycle_life import (
    MANUFACTURER_CURVES,
    CycleLifeCurve,
    cycle_life_at_dod,
    fit_curve,
    mean_curve,
)
from repro.errors import ConfigurationError


class TestFitting:
    def test_fit_recovers_exact_power_law(self):
        points = [(d, 500.0 * d**-1.2) for d in (0.2, 0.5, 1.0)]
        curve = fit_curve("exact", points)
        assert curve.n_100 == pytest.approx(500.0, rel=1e-6)
        assert curve.exponent == pytest.approx(1.2, rel=1e-6)

    def test_fit_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_curve("short", [(0.5, 100.0)])

    def test_fit_rejects_nonpositive_values(self):
        with pytest.raises(ConfigurationError):
            fit_curve("bad", [(0.5, 100.0), (-0.1, 50.0)])


class TestManufacturerCurves:
    @pytest.mark.parametrize("name", sorted(MANUFACTURER_CURVES))
    def test_cycles_decrease_with_dod(self, name):
        curve = MANUFACTURER_CURVES[name]
        values = [curve.cycles(d / 10.0) for d in range(2, 11)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize("name", sorted(MANUFACTURER_CURVES))
    def test_fit_close_to_datasheet_points(self, name):
        curve = MANUFACTURER_CURVES[name]
        for dod, cycles in curve.points:
            assert curve.cycles(dod) == pytest.approx(cycles, rel=0.30)

    def test_paper_claim_half_life_above_fifty_percent_dod(self):
        """Fig. 10's headline: cycling above 50 % DoD halves cycle life
        relative to shallow cycling."""
        curve = mean_curve()
        assert curve.cycles(0.55) < 0.6 * curve.cycles(0.25)

    def test_total_throughput_rewards_shallow_cycling(self):
        """Shallow cycling yields more lifetime Ah — the curvature planned
        aging exploits."""
        curve = mean_curve()
        assert curve.lifetime_ah_throughput(35.0, 0.2) > curve.lifetime_ah_throughput(
            35.0, 0.8
        )

    def test_lookup_by_manufacturer(self):
        assert cycle_life_at_dod(0.5, "trojan") == pytest.approx(
            MANUFACTURER_CURVES["trojan"].cycles(0.5)
        )

    def test_lookup_unknown_manufacturer(self):
        with pytest.raises(ConfigurationError):
            cycle_life_at_dod(0.5, "acme")

    def test_cycles_rejects_zero_dod(self):
        curve = MANUFACTURER_CURVES["trojan"]
        with pytest.raises(ConfigurationError):
            curve.cycles(0.0)

    def test_upg_is_the_budget_line(self):
        """UPG's datasheet sits well below the deep-cycle vendors."""
        assert MANUFACTURER_CURVES["upg"].cycles(0.5) < MANUFACTURER_CURVES[
            "trojan"
        ].cycles(0.5)
