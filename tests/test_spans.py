"""Tests for the span/causality layer (`repro.obs.spans`).

Spans are first-class bus events (start eid == span id), the
``caused_by``/``in_span`` context managers stamp provenance onto every
event emitted inside them, and the engine opens/closes the
``deep_discharge`` excursion span at SoC crossings.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    ALERTS,
    BUS,
    REGISTRY,
    MemorySink,
    disable_observability,
)
from repro.obs.events import DayStartEvent, SocCrossingEvent
from repro.obs.spans import SPANS, caused_by, current_cause, current_span, in_span
from repro.sim.engine import Simulation


@pytest.fixture(autouse=True)
def _clean_obs_state():
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    ALERTS.enabled = False
    ALERTS.reset()
    SPANS.reset()
    yield
    disable_observability()
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    ALERTS.reset()
    SPANS.reset()


@pytest.fixture
def sink():
    memory = MemorySink()
    BUS.add_sink(memory)
    yield memory
    BUS.remove_sink(memory)


class TestSpanLifecycle:
    def test_disabled_bus_is_inert(self):
        assert SPANS.start("deep_discharge", node="n0", t=1.0) == 0
        assert SPANS.end("deep_discharge", node="n0", t=2.0) == 0
        assert not SPANS.open_spans()

    def test_start_end_emit_matched_events(self, sink):
        span_id = SPANS.start("dvfs_cap", node="n0", t=10.0)
        assert span_id > 0
        assert SPANS.open_id("dvfs_cap", "n0") == span_id
        assert SPANS.end("dvfs_cap", node="n0", t=70.0) == span_id
        start, end = sink.events
        assert start.kind == "span_start"
        assert start.eid == span_id and start.span_id == span_id
        assert start.span == "dvfs_cap" and start.node == "n0"
        assert end.kind == "span_end"
        assert end.span_id == span_id
        assert end.duration_s == pytest.approx(60.0)

    def test_start_is_idempotent_per_name_node(self, sink):
        first = SPANS.start("parked", node="n0", t=0.0)
        again = SPANS.start("parked", node="n0", t=5.0)
        other = SPANS.start("parked", node="n1", t=5.0)
        assert first == again
        assert other != first
        assert sum(e.kind == "span_start" for e in sink.events) == 2

    def test_end_without_open_span_is_silent(self, sink):
        assert SPANS.end("evacuation", node="n0", t=1.0) == 0
        assert not sink.events

    def test_end_feeds_duration_histogram(self, sink):
        REGISTRY.enabled = True
        SPANS.start("consolidation", t=0.0)
        SPANS.end("consolidation", t=120.0)
        hist = REGISTRY.snapshot()["histograms"]["span/consolidation"]
        assert hist["count"] == 1
        assert hist["max"] == pytest.approx(120.0)

    def test_reset_by_scope(self, sink):
        SPANS.start("deep_discharge", node="n0", t=0.0)
        cell = SPANS.start("campaign_cell", node="cell", t=0.0, scope="campaign")
        SPANS.reset(scope="run")
        assert SPANS.open_id("deep_discharge", "n0") == 0
        assert SPANS.open_id("campaign_cell", "cell") == cell
        SPANS.reset()
        assert not SPANS.open_spans()

    def test_reset_emits_no_end_events(self, sink):
        SPANS.start("deep_discharge", node="n0", t=0.0)
        SPANS.reset()
        assert [e.kind for e in sink.events] == ["span_start"]


class TestCauseContext:
    def test_caused_by_stamps_events(self, sink):
        with caused_by(41):
            assert current_cause() == 41
            BUS.emit(DayStartEvent(t=0.0, day_index=0))
        assert current_cause() == 0
        assert sink.events[0].cause_id == 41

    def test_explicit_cause_wins_over_ambient(self, sink):
        with caused_by(41):
            BUS.emit(DayStartEvent(t=0.0, day_index=0, cause_id=7))
        assert sink.events[0].cause_id == 7

    def test_zero_ids_are_no_ops(self, sink):
        with caused_by(0), in_span(0):
            BUS.emit(DayStartEvent(t=0.0, day_index=0))
        event = sink.events[0]
        assert event.cause_id == 0 and event.span_id == 0

    def test_in_span_stamps_events(self, sink):
        with SPANS.span("evacuation", node="n0", t=0.0) as span_id:
            assert current_span() == span_id
            BUS.emit(DayStartEvent(t=0.0, day_index=0))
        start, inner, end = sink.events
        assert inner.span_id == span_id
        assert end.kind == "span_end"
        assert current_span() == 0

    def test_nested_span_records_parent(self, sink):
        with SPANS.span("consolidation", t=0.0) as outer:
            inner = SPANS.start("parked", node="n0", t=0.0)
        records = {e.eid: e for e in sink.events if e.kind == "span_start"}
        assert records[inner].parent_id == outer
        assert records[outer].parent_id == 0

    def test_span_cause_recorded_on_start_event(self, sink):
        BUS.emit(DayStartEvent(t=0.0, day_index=0))
        trigger = sink.events[0].eid
        span_id = SPANS.start("deep_discharge", node="n0", t=0.0, cause=trigger)
        start = sink.events[-1]
        assert start.eid == span_id
        assert start.cause_id == trigger


class TestEngineSpans:
    def test_soc_crossing_opens_deep_discharge_span(
        self, tiny_scenario, tmp_path
    ):
        from dataclasses import replace

        from repro.core.policies.factory import make_policy
        from repro.solar.weather import DayClass

        scenario = replace(tiny_scenario, initial_fade=0.15)
        trace = scenario.trace_generator().day(DayClass.RAINY)
        sink = MemorySink(maxlen=None)
        BUS.add_sink(sink)
        try:
            Simulation(scenario, make_policy("baat"), trace).run()
        finally:
            BUS.remove_sink(sink)
        crossings = [e for e in sink.events if isinstance(e, SocCrossingEvent)]
        starts = {
            e.cause_id: e
            for e in sink.events
            if e.kind == "span_start" and e.span == "deep_discharge"
        }
        downs = [c for c in crossings if c.direction == "down"]
        assert downs, "rainy high-fade day must dip below the 40 % line"
        for crossing in downs:
            assert crossing.eid in starts, "every down-crossing opens a span"
        # Upward crossings close them: span_end count matches up-crossings.
        ends = [
            e
            for e in sink.events
            if e.kind == "span_end" and e.span == "deep_discharge"
        ]
        ups = [c for c in crossings if c.direction == "up"]
        assert len(ends) == len(ups)

    def test_second_run_does_not_leak_open_spans(self, tiny_scenario):
        from repro.core.policies.factory import make_policy
        from repro.solar.weather import DayClass

        sink = MemorySink(maxlen=None)
        BUS.add_sink(sink)
        try:
            trace = tiny_scenario.trace_generator().day(DayClass.SUNNY)
            SPANS.start("deep_discharge", node="stale", t=0.0)
            Simulation(tiny_scenario, make_policy("e-buff"), trace).run()
        finally:
            BUS.remove_sink(sink)
        # The stale span was dropped at run start, not closed mid-run.
        assert SPANS.open_id("deep_discharge", "stale") == 0
        assert not any(
            e.kind == "span_end" and e.node == "stale" for e in sink.events
        )
