"""Unit tests for the five aging mechanisms."""

import pytest

from repro.battery.aging.conditions import OperatingConditions
from repro.battery.aging.mechanisms import (
    ActiveMassDegradation,
    GridCorrosion,
    Stratification,
    Sulphation,
    WaterLoss,
    default_mechanisms,
    rate_stress_weight,
    soc_stress_weight,
)
from repro.units import days, hours


def conditions(**overrides) -> OperatingConditions:
    base = dict(
        soc=0.8,
        current=0.0,
        temperature_c=25.0,
        reference_current=1.75,
        capacity_ah=35.0,
    )
    base.update(overrides)
    return OperatingConditions(**base)


class TestStressWeights:
    def test_soc_weight_benign_at_high_soc(self):
        assert soc_stress_weight(0.9) == 1.0

    def test_soc_weight_worst_below_forty_percent(self):
        assert soc_stress_weight(0.1) == 3.0

    def test_soc_weight_monotone(self):
        weights = [soc_stress_weight(s / 10.0) for s in range(10, -1, -1)]
        for a, b in zip(weights, weights[1:]):
            assert b >= a

    def test_rate_weight_unity_at_or_below_nominal(self):
        assert rate_stress_weight(0.5) == 1.0
        assert rate_stress_weight(1.0) == 1.0

    def test_rate_weight_saturates(self):
        assert rate_stress_weight(100.0) == 2.0


class TestGridCorrosion:
    def test_accrues_at_rest(self):
        mech = GridCorrosion()
        assert mech.damage(conditions(), days(1)) > 0.0

    def test_float_charging_accelerates(self):
        mech = GridCorrosion()
        base = mech.damage(conditions(), days(1))
        floated = mech.damage(conditions(is_float_charging=True), days(1))
        assert floated > base

    def test_temperature_accelerates(self):
        mech = GridCorrosion()
        cool = mech.damage(conditions(temperature_c=20.0), days(1))
        hot = mech.damage(conditions(temperature_c=30.0), days(1))
        assert hot == pytest.approx(2.0 * cool)

    def test_calendar_life_calibration(self):
        """Pure float service should last years, not months."""
        mech = GridCorrosion()
        per_year = mech.damage(
            conditions(soc=1.0, is_float_charging=True, temperature_c=25.0),
            days(365),
        )
        years_to_eol = 0.20 / per_year
        assert 3.0 < years_to_eol < 10.0


class TestActiveMass:
    def test_no_damage_when_not_discharging(self):
        mech = ActiveMassDegradation()
        assert mech.damage(conditions(current=0.0), hours(1)) == 0.0
        assert mech.damage(conditions(current=-5.0), hours(1)) == 0.0

    def test_damage_proportional_to_throughput(self):
        # Both currents below the reference rate, so the rate-stress
        # weight is 1 and damage is purely proportional to Ah.
        mech = ActiveMassDegradation()
        one = mech.damage(conditions(current=0.5), hours(1))
        two = mech.damage(conditions(current=1.0), hours(1))
        assert two == pytest.approx(2.0 * one)

    def test_low_soc_discharge_damages_more(self):
        mech = ActiveMassDegradation()
        high = mech.damage(conditions(current=2.0, soc=0.9), hours(1))
        low = mech.damage(conditions(current=2.0, soc=0.2), hours(1))
        assert low > 2.0 * high

    def test_constant_throughput_calibration(self):
        """At unit weights, lifetime_full_cycles full cycles reach EOL."""
        mech = ActiveMassDegradation(lifetime_full_cycles=380.0)
        # One full cycle at benign SoC/rate/temperature: 35 Ah at 1.75 A.
        d = mech.damage(
            conditions(current=1.75, soc=0.9, temperature_c=20.0), hours(20)
        )
        assert d == pytest.approx(0.20 / 380.0, rel=1e-6)


class TestSulphation:
    def test_zero_above_threshold(self):
        mech = Sulphation()
        assert mech.damage(conditions(soc=0.5), days(1)) == 0.0

    def test_deeper_is_worse(self):
        mech = Sulphation()
        shallow = mech.damage(conditions(soc=0.35, hours_since_full_charge=72), days(1))
        deep = mech.damage(conditions(soc=0.05, hours_since_full_charge=72), days(1))
        assert deep > shallow

    def test_staleness_matters(self):
        mech = Sulphation()
        fresh = mech.damage(conditions(soc=0.2, hours_since_full_charge=1.0), days(1))
        stale = mech.damage(conditions(soc=0.2, hours_since_full_charge=100.0), days(1))
        assert stale > fresh

    def test_abandoned_battery_dies_in_about_two_months(self):
        mech = Sulphation()
        per_day = mech.damage(
            conditions(soc=0.0, temperature_c=25.0, hours_since_full_charge=1000.0),
            days(1),
        )
        days_to_eol = 0.20 / per_day
        assert 30.0 < days_to_eol < 90.0


class TestWaterLoss:
    def test_zero_without_gassing(self):
        mech = WaterLoss()
        assert mech.damage(conditions(current=-5.0, gassing_current=0.0), hours(1)) == 0.0

    def test_proportional_to_gassing_charge(self):
        mech = WaterLoss()
        one = mech.damage(conditions(current=-5.0, gassing_current=0.5), hours(1))
        two = mech.damage(conditions(current=-5.0, gassing_current=1.0), hours(1))
        assert two == pytest.approx(2.0 * one)

    def test_temperature_accelerates(self):
        mech = WaterLoss()
        cool = mech.damage(
            conditions(current=-5.0, gassing_current=0.5, temperature_c=20.0), hours(1)
        )
        hot = mech.damage(
            conditions(current=-5.0, gassing_current=0.5, temperature_c=30.0), hours(1)
        )
        assert hot == pytest.approx(2.0 * cool)


class TestStratification:
    def test_zero_at_rest(self):
        mech = Stratification()
        assert mech.damage(conditions(current=0.0, hours_since_full_charge=100), days(1)) == 0.0

    def test_zero_right_after_full_charge(self):
        mech = Stratification()
        assert mech.damage(conditions(current=2.0, hours_since_full_charge=0.0), days(1)) == 0.0

    def test_grows_with_staleness_then_saturates(self):
        mech = Stratification()
        d24 = mech.damage(conditions(current=2.0, hours_since_full_charge=24), days(1))
        d72 = mech.damage(conditions(current=2.0, hours_since_full_charge=72), days(1))
        d200 = mech.damage(conditions(current=2.0, hours_since_full_charge=200), days(1))
        assert d24 < d72
        assert d200 == pytest.approx(d72)

    def test_deep_low_current_discharge_is_worst(self):
        mech = Stratification()
        normal = mech.damage(
            conditions(current=5.0, soc=0.5, hours_since_full_charge=100), days(1)
        )
        worst = mech.damage(
            conditions(current=0.5, soc=0.2, hours_since_full_charge=100), days(1)
        )
        assert worst > normal


def test_default_mechanisms_covers_all_five():
    names = {m.name for m in default_mechanisms()}
    assert names == {
        "corrosion",
        "active_mass",
        "sulphation",
        "water_loss",
        "stratification",
    }
