"""Tests for the declarative alert engine (`repro.obs.alerts`)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import BUS, TraceBus, disable_observability
from repro.obs.alerts import (
    ALERTS,
    AlertEngine,
    AlertRule,
    default_rules,
    severity_rank,
    with_thresholds,
)
from repro.obs.sinks import MemorySink


@pytest.fixture(autouse=True)
def _clean_obs_state():
    BUS.clear_sinks()
    ALERTS.enabled = False
    ALERTS.reset()
    yield
    disable_observability()
    BUS.clear_sinks()
    ALERTS.reset()


def engine_with(*rules: AlertRule) -> AlertEngine:
    engine = AlertEngine(rules)
    engine.enabled = True
    return engine


ABOVE = AlertRule(
    name="hot", severity="warning", threshold=10.0, direction="above",
    clear_margin=2.0,
)


class TestRuleValidation:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ConfigurationError):
            AlertRule(name="x", severity="apocalyptic")

    def test_unknown_kind_and_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            AlertRule(name="x", kind="telepathy")
        with pytest.raises(ConfigurationError):
            AlertRule(name="x", direction="sideways")

    def test_rate_rule_needs_window(self):
        with pytest.raises(ConfigurationError):
            AlertRule(name="x", kind="rate", window_s=0.0)

    def test_severity_rank_orders(self):
        assert (
            severity_rank("info")
            < severity_rank("warning")
            < severity_rank("critical")
        )

    def test_with_thresholds_replaces(self):
        tweaked = with_thresholds(ABOVE, threshold=5.0)
        assert tweaked.threshold == 5.0 and tweaked.name == ABOVE.name


class TestThresholdHysteresis:
    def test_fires_on_breach_only(self):
        engine = engine_with(ABOVE)
        assert engine.observe("hot", "n1", 9.0, t=0.0) is None
        event = engine.observe("hot", "n1", 11.0, t=10.0)
        assert event is not None and not event.cleared
        assert event.severity == "warning" and event.node == "n1"

    def test_clears_only_past_the_margin(self):
        engine = engine_with(ABOVE)
        engine.observe("hot", "n1", 11.0, t=0.0)
        # Inside the hysteresis band (threshold - margin = 8): still active.
        assert engine.observe("hot", "n1", 9.0, t=1.0) is None
        assert len(engine.active()) == 1
        cleared = engine.observe("hot", "n1", 7.9, t=2.0)
        assert cleared is not None and cleared.cleared
        assert cleared.severity == "info"
        assert engine.active() == []

    def test_is_active_tracks_the_episode(self):
        engine = engine_with(ABOVE)
        assert not engine.is_active("hot", "n1")
        engine.observe("hot", "n1", 11.0, t=0.0)
        assert engine.is_active("hot", "n1")
        assert not engine.is_active("hot", "n2")
        # Inside the hysteresis band: still active (dedup, no emission).
        engine.observe("hot", "n1", 9.0, t=1.0)
        assert engine.is_active("hot", "n1")
        engine.observe("hot", "n1", 7.9, t=2.0)
        assert not engine.is_active("hot", "n1")

    def test_below_direction_mirrors(self):
        rule = AlertRule(
            name="reserve", threshold=120.0, direction="below",
            clear_margin=60.0, severity="critical",
        )
        engine = engine_with(rule)
        assert engine.observe("reserve", "n1", 300.0, t=0.0) is None
        assert engine.observe("reserve", "n1", 90.0, t=1.0) is not None
        # Must exceed threshold + margin to clear.
        assert engine.observe("reserve", "n1", 150.0, t=2.0) is None
        cleared = engine.observe("reserve", "n1", 181.0, t=3.0)
        assert cleared is not None and cleared.cleared

    def test_refire_after_clear(self):
        engine = engine_with(ABOVE)
        engine.observe("hot", "n1", 11.0, t=0.0)
        engine.observe("hot", "n1", 0.0, t=1.0)
        again = engine.observe("hot", "n1", 12.0, t=2.0)
        assert again is not None and not again.cleared
        assert len(engine.fired("hot")) == 2

    def test_per_call_threshold_override(self):
        engine = engine_with(ABOVE)
        event = engine.observe("hot", "n1", 6.0, t=0.0, threshold=5.0)
        assert event is not None and event.threshold == 5.0


class TestDedup:
    def test_active_alert_fires_once_by_default(self):
        engine = engine_with(ABOVE)
        engine.observe("hot", "n1", 11.0, t=0.0)
        for t in range(1, 50):
            assert engine.observe("hot", "n1", 11.0 + t, t=float(t)) is None
        assert len(engine.fired("hot")) == 1

    def test_renotify_interval(self):
        rule = with_thresholds(ABOVE, renotify_s=10.0)
        engine = engine_with(rule)
        engine.observe("hot", "n1", 11.0, t=0.0)
        assert engine.observe("hot", "n1", 11.0, t=5.0) is None
        assert engine.observe("hot", "n1", 11.0, t=10.0) is not None
        assert len(engine.fired("hot")) == 2

    def test_keys_are_independent(self):
        engine = engine_with(ABOVE)
        assert engine.observe("hot", "n1", 11.0, t=0.0) is not None
        assert engine.observe("hot", "n2", 11.0, t=0.0) is not None
        assert len(engine.active()) == 2


class TestSeverityOrdering:
    def test_active_sorted_most_severe_first(self):
        engine = engine_with(
            AlertRule(name="a_info", severity="info", threshold=1.0),
            AlertRule(name="b_crit", severity="critical", threshold=1.0),
            AlertRule(name="c_warn", severity="warning", threshold=1.0),
        )
        for name in ("a_info", "b_crit", "c_warn"):
            engine.observe(name, "n1", 2.0, t=0.0)
        severities = [a.rule.severity for a in engine.active()]
        assert severities == ["critical", "warning", "info"]


class TestRateRules:
    RAMP = AlertRule(
        name="ramp", kind="rate", threshold=1.0, direction="above",
        window_s=10.0,
    )

    def test_first_sample_never_fires(self):
        engine = engine_with(self.RAMP)
        assert engine.observe("ramp", "n1", 100.0, t=0.0) is None

    def test_fast_ramp_fires_slow_does_not(self):
        engine = engine_with(self.RAMP)
        engine.observe("ramp", "n1", 0.0, t=0.0)
        # 5 units over 2 s = 2.5/s > 1/s.
        event = engine.observe("ramp", "n1", 5.0, t=2.0)
        assert event is not None and event.value == pytest.approx(2.5)
        engine.reset()
        engine.observe("ramp", "n1", 0.0, t=0.0)
        assert engine.observe("ramp", "n1", 5.0, t=10.0) is None

    def test_window_trims_old_samples(self):
        engine = engine_with(self.RAMP)
        # A spike long ago must not keep the rate high forever.
        engine.observe("ramp", "n1", 0.0, t=0.0)
        engine.observe("ramp", "n1", 30.0, t=1.0)  # fires
        for t in range(12, 40):
            event = engine.observe("ramp", "n1", 30.0, t=float(t))
        # Flat for > window_s: the rate is ~0 now (alert cleared by then).
        assert engine.active() == []


class TestFleetRules:
    FLEET = AlertRule(
        name="regression", kind="fleet", fleet_factor=2.0, min_value=0.1,
    )

    def test_observe_records_only(self):
        engine = engine_with(self.FLEET)
        assert engine.observe("regression", "n1", 5.0, t=0.0) is None
        assert engine.fired() == []

    def test_outlier_fires_against_median(self):
        engine = engine_with(self.FLEET)
        for key, value in (("n1", 1.0), ("n2", 1.2), ("n3", 5.0)):
            engine.observe("regression", key, value, t=0.0)
        events = engine.evaluate_fleet("regression", t=0.0)
        assert [e.node for e in events] == ["n3"]

    def test_needs_two_keys(self):
        engine = engine_with(self.FLEET)
        engine.observe("regression", "n1", 99.0, t=0.0)
        assert engine.evaluate_fleet("regression", t=0.0) == []

    def test_min_value_floor_suppresses_noise(self):
        engine = engine_with(self.FLEET)
        # All tiny: 3x the median is still under min_value -> no alert.
        for key, value in (("n1", 1e-9), ("n2", 1e-9), ("n3", 3e-9)):
            engine.observe("regression", key, value, t=0.0)
        assert engine.evaluate_fleet("regression", t=0.0) == []

    def test_threshold_rule_rejects_fleet_evaluation(self):
        engine = engine_with(ABOVE)
        with pytest.raises(ConfigurationError):
            engine.evaluate_fleet("hot", t=0.0)


class TestBusIntegration:
    def test_fired_alerts_reach_the_bus(self):
        bus = TraceBus()
        sink = bus.add_sink(MemorySink())
        engine = AlertEngine([ABOVE], bus=bus)
        engine.enabled = True
        engine.observe("hot", "n1", 11.0, t=3.0)
        assert [e.kind for e in sink.events] == ["alert"]
        event = sink.events[0]
        assert event.rule == "hot" and event.t == 3.0 and not event.cleared

    def test_no_bus_records_history_only(self):
        engine = engine_with(ABOVE)
        engine.observe("hot", "n1", 11.0, t=0.0)
        assert len(engine.history) == 1


class TestDefaultRules:
    def test_names_are_unique_and_expected(self):
        rules = default_rules()
        names = {r.name for r in rules}
        assert len(names) == len(rules)
        assert {
            "ddt_window_breach",
            "dr_reserve_exhaustion",
            "soc_floor_violation",
            "aging_speed_regression",
            "cache_miss_storm",
        } <= names

    def test_watchdog_thresholds_mirror_slowdown_config(self):
        from repro.core.slowdown import SlowdownConfig

        by_name = {r.name: r for r in default_rules()}
        cfg = SlowdownConfig()
        assert by_name["ddt_window_breach"].threshold == cfg.ddt_threshold
        assert (
            by_name["dr_reserve_exhaustion"].threshold
            == cfg.reserve_seconds_threshold
        )
        assert by_name["soc_floor_violation"].threshold == cfg.protected_soc

    def test_enable_observability_arms_the_process_engine(self):
        from repro.obs import enable_observability

        assert not ALERTS.enabled
        enable_observability()
        try:
            assert ALERTS.enabled
            assert {r.name for r in default_rules()} <= {
                r.name for r in ALERTS.rules
            }
        finally:
            disable_observability()
        assert not ALERTS.enabled
        assert ALERTS.history == []

    def test_unknown_rule_name_raises(self):
        engine = engine_with(ABOVE)
        with pytest.raises(ConfigurationError):
            engine.observe("nope", "n1", 1.0, t=0.0)


class TestResetSemantics:
    def test_reset_keeps_rules_and_enabled(self):
        engine = engine_with(ABOVE)
        engine.observe("hot", "n1", 11.0, t=0.0)
        engine.reset()
        assert engine.enabled and engine.rules
        assert engine.history == [] and engine.active() == []

    def test_renotify_inf_default(self):
        assert ABOVE.renotify_s == math.inf
