"""Tests for the provisioning advisor."""

import pytest

from repro.core.advisor import ProvisioningAdvisor
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def advisor():
    return ProvisioningAdvisor(sunshine_fraction=0.5, n_nodes=6, n_days=2)


@pytest.fixture(scope="module")
def recommendation(advisor):
    return advisor.recommend(capacities_ah=(15.0, 35.0, 70.0))


class TestEvaluate:
    def test_design_point_fields(self, advisor):
        point = advisor.evaluate(35.0)
        assert point.capacity_ah == 35.0
        assert point.lifetime_days > 0.0
        assert point.throughput_per_day > 0.0
        assert point.annual_cost_usd > 0.0
        assert point.cost_per_mthroughput > 0.0

    def test_bigger_battery_lower_ratio(self, advisor):
        small = advisor.evaluate(20.0)
        big = advisor.evaluate(70.0)
        assert big.server_to_battery_ratio < small.server_to_battery_ratio

    def test_bigger_battery_longer_life(self, advisor):
        small = advisor.evaluate(15.0)
        big = advisor.evaluate(70.0)
        assert big.lifetime_days > small.lifetime_days

    def test_rejects_bad_capacity(self, advisor):
        with pytest.raises(ConfigurationError):
            advisor.evaluate(0.0)


class TestRecommend:
    def test_best_is_among_points(self, recommendation):
        assert recommendation.best in recommendation.points

    def test_best_minimises_the_score(self, recommendation):
        scores = [p.cost_per_mthroughput for p in recommendation.points]
        assert recommendation.best.cost_per_mthroughput == min(scores)

    def test_points_sorted_by_capacity(self, recommendation):
        caps = [p.capacity_ah for p in recommendation.points]
        assert caps == sorted(caps)

    def test_rejects_empty_sweep(self, advisor):
        with pytest.raises(ConfigurationError):
            advisor.recommend(capacities_ah=())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProvisioningAdvisor(sunshine_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ProvisioningAdvisor(n_days=0)
