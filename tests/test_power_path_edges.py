"""Edge-case tests for the per-step power router.

Pins down the corner behaviours the hot-path fixes touched: the order in
which a capped utility budget is consumed, the brownout tolerance band
(>2 W / >2 % of the deficit), the rule that a battery which discharged
this step cannot also charge, the UPS restart hysteresis around
``RESTART_SOC`` with its drawing-nodes solar divisor, and the
one-RNG-draw-per-step utilisation contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.battery.unit import BatteryUnit
from repro.core.policies.factory import make_policy
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.power_path import RESTART_SOC, PowerFlows, PowerPath
from repro.datacenter.server import Server, ServerParams, ServerPowerState
from repro.datacenter.vm import VM
from repro.datacenter.workloads import PAPER_WORKLOADS
from repro.sim.engine import Simulation
from repro.sim.recorder import TraceRecorder
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass


def _node(name: str, soc: float = 1.0, idle_w: float = 60.0, peak_w: float = 150.0):
    """A bare node: idle server (no VMs) + fresh battery at ``soc``."""
    server = Server(params=ServerParams(idle_w=idle_w, peak_w=peak_w), name=name)
    battery = BatteryUnit(name=f"{name}/battery", initial_soc=soc)
    return Node.build(name, server=server, battery=battery)


class TestUtilityBudgetOrdering:
    """The capped grid assist drains in node order, before batteries."""

    def test_budget_covers_first_node_then_batteries_bridge(self):
        nodes = [_node("node0"), _node("node1")]
        path = PowerPath(Cluster(nodes), utility_budget_w=60.0)
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        # node0's whole 60 W idle deficit came from the grid; node1 had
        # to draw its own battery.
        assert flows.utility_to_load_w == pytest.approx(60.0)
        assert nodes[0].battery.sample().current_a == 0.0
        assert nodes[1].battery.sample().current_a > 0.0
        assert flows.battery_to_load_w == pytest.approx(60.0, rel=0.05)
        assert flows.unserved_w == 0.0
        assert flows.browned_out_nodes == 0

    def test_partial_budget_splits_across_nodes_in_order(self):
        nodes = [_node("node0"), _node("node1")]
        path = PowerPath(Cluster(nodes), utility_budget_w=90.0)
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        # 60 W to node0, the remaining 30 W to node1; node1's battery
        # bridges only its residual ~30 W.
        assert flows.utility_to_load_w == pytest.approx(90.0)
        assert nodes[0].battery.sample().current_a == 0.0
        assert flows.battery_to_load_w == pytest.approx(30.0, rel=0.05)

    def test_exhausted_budget_leaves_batteries_carrying_everything(self):
        nodes = [_node("node0"), _node("node1")]
        path = PowerPath(Cluster(nodes), utility_budget_w=0.0)
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert flows.utility_to_load_w == 0.0
        assert flows.battery_to_load_w == pytest.approx(120.0, rel=0.05)


class TestBrownoutToleranceBand:
    """A server browns out only on a materially unmet deficit."""

    def test_sub_two_watt_sag_is_tolerated(self):
        node = _node("node0")
        node.discharge_cap_w = 59.0  # 1 W short of the 60 W idle demand
        path = PowerPath(Cluster([node]))
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert flows.browned_out_nodes == 0
        assert flows.unserved_w == 0.0
        assert node.server.state is ServerPowerState.UP

    def test_two_percent_band_scales_with_deficit(self):
        # 200 W deficit: the band is max(2, 0.02*200) = 4 W, so a 3 W
        # shortfall — although above the absolute 2 W floor — is tolerated.
        node = _node("node0", idle_w=200.0, peak_w=300.0)
        node.discharge_cap_w = 197.0
        path = PowerPath(Cluster([node]))
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert flows.browned_out_nodes == 0
        assert node.server.state is ServerPowerState.UP

    def test_material_shortfall_browns_out(self):
        node = _node("node0")
        node.discharge_cap_w = 40.0  # 20 W short of 60 W
        path = PowerPath(Cluster([node]))
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert flows.browned_out_nodes == 1
        assert flows.unserved_w == pytest.approx(20.0, rel=0.05)
        assert node.server.state is ServerPowerState.DOWN
        assert node.unserved_wh > 0.0


class TestChargeExcludesDischargedBatteries:
    """No battery both discharges and charges within one routing step.

    The invariant is checked over a whole cloudy-day run (where both
    discharging and charging genuinely occur) by instrumenting every
    battery and the power path's step counter.
    """

    def test_invariant_over_cloudy_day(self):
        scenario = Scenario(
            n_nodes=3,
            dt_s=300.0,
            manufacturing_variation=False,
            initial_soc=0.6,
            workloads=tuple(
                PAPER_WORKLOADS[n]
                for n in ("web_serving", "data_analytics", "word_count")
            ),
        )
        trace = scenario.trace_generator().day(DayClass.CLOUDY)
        sim = Simulation(scenario, make_policy("e-buff"), trace)

        step_idx = {"i": -1}
        discharges: set = set()
        charges: set = set()

        def _wrap(battery, name):
            orig_discharge, orig_charge = battery.discharge, battery.charge

            def discharge(power_w, dt, strict=False):
                discharges.add((step_idx["i"], name))
                return orig_discharge(power_w, dt, strict=strict)

            def charge(power_w, dt):
                charges.add((step_idx["i"], name))
                return orig_charge(power_w, dt)

            battery.discharge, battery.charge = discharge, charge

        for node in sim.cluster:
            _wrap(node.battery, node.name)
        orig_step = sim.power_path.step

        def step(*args, **kwargs):
            step_idx["i"] += 1
            return orig_step(*args, **kwargs)

        sim.power_path.step = step
        sim.run()

        assert discharges, "run never discharged a battery (vacuous test)"
        assert charges, "run never charged a battery (vacuous test)"
        assert not discharges & charges, (
            "a battery charged in the same step it discharged"
        )


class TestRestartHysteresis:
    """A cut-off server stays down until its battery clears RESTART_SOC
    or the solar share alone can carry it."""

    def test_below_restart_soc_stays_down(self):
        node = _node("node0", soc=RESTART_SOC - 0.05)
        node.server.state = ServerPowerState.DOWN
        path = PowerPath(Cluster([node]))
        path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert node.server.state is ServerPowerState.DOWN

    def test_recovered_battery_restarts(self):
        node = _node("node0", soc=RESTART_SOC + 0.05)
        node.server.state = ServerPowerState.DOWN
        path = PowerPath(Cluster([node]))
        path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert node.server.state is ServerPowerState.BOOTING

    def test_solar_share_divides_across_drawing_nodes_only(self):
        # node0 is down with a dead battery, node1 is admin-off, node2 is
        # up. Only node2 is drawing, so the restart estimate shares the
        # solar line across {node2, node0} = 2 nodes, not all 3. 130 W of
        # solar gives node0 a 65 W prospect >= its 60 W idle -> restart.
        # The pre-fix divisor (all nodes + 1) would see 130/4 = 32.5 W
        # and wrongly keep the server down.
        nodes = [_node("node0", soc=0.05), _node("node1"), _node("node2")]
        nodes[0].server.state = ServerPowerState.DOWN
        nodes[1].server.admin_off = True
        path = PowerPath(Cluster(nodes))
        path.step(t=0.0, dt=60.0, solar_w=130.0)
        assert nodes[0].server.state is ServerPowerState.BOOTING

    def test_insufficient_solar_and_dead_battery_stays_down(self):
        nodes = [_node("node0", soc=0.05), _node("node2")]
        nodes[0].server.state = ServerPowerState.DOWN
        path = PowerPath(Cluster(nodes))
        # 100 W across {node2, node0} = 50 W each < 60 W idle, and the
        # battery is below RESTART_SOC: no restart.
        path.step(t=0.0, dt=60.0, solar_w=100.0)
        assert nodes[0].server.state is ServerPowerState.DOWN


class TestSampleOnceUtilization:
    """One utilisation draw per (VM, step): the routing pass and the
    progress pass must see the same sample without a second RNG draw."""

    def test_utilization_cached_per_timestamp(self):
        vm = VM(name="vm0", workload=PAPER_WORKLOADS["web_serving"])
        rng = np.random.default_rng(7)
        u1 = vm.utilization(600.0, rng)
        state = rng.bit_generator.state
        u2 = vm.utilization(600.0, rng)
        assert u2 == u1
        assert rng.bit_generator.state == state

    def test_advance_with_explicit_util_burns_no_draw(self):
        vm = VM(name="vm0", workload=PAPER_WORKLOADS["web_serving"])
        rng = np.random.default_rng(7)
        util = vm.utilization(600.0, rng)
        state = rng.bit_generator.state
        vm.advance(60.0, 1.0, 600.0, rng, util=util)
        assert rng.bit_generator.state == state
        assert vm.progress == pytest.approx(util * 60.0)


class TestRecorderCurrentSeries:
    """as_arrays() exposes the per-node signed current series."""

    def test_current_keys_roundtrip(self):
        rec = TraceRecorder(["a", "b"])
        flows = PowerFlows(
            demand_w=100.0,
            solar_available_w=50.0,
            solar_to_load_w=50.0,
            solar_to_battery_w=0.0,
            battery_to_load_w=50.0,
            utility_to_load_w=0.0,
            grid_feedback_w=0.0,
            unserved_w=0.0,
            browned_out_nodes=0,
        )
        rec.record(0.0, 60.0, flows, {"a": 0.5, "b": 0.6}, {"a": 1.5, "b": -2.0})
        rec.record(60.0, 60.0, flows, {"a": 0.4, "b": 0.7}, {"a": 0.0, "b": 3.0})
        arrays = rec.as_arrays()
        assert np.array_equal(arrays["current/a"], [1.5, 0.0])
        assert np.array_equal(arrays["current/b"], [-2.0, 3.0])
        assert np.array_equal(arrays["soc/a"], [0.5, 0.4])
