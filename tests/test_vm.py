"""Unit tests for the VM model."""

import pytest

from repro.datacenter.vm import MIGRATION_SECONDS, RESUME_SECONDS, VM
from repro.datacenter.workloads import PAPER_WORKLOADS
from repro.errors import MigrationError
from repro.rng import spawn


@pytest.fixture
def placed_vm(vm):
    vm.host = "node0"
    return vm


class TestMigration:
    def test_moves_host_and_stalls(self, placed_vm):
        placed_vm.begin_migration("node1")
        assert placed_vm.host == "node1"
        assert placed_vm.is_stalled
        assert placed_vm.migrations == 1

    def test_pinned_vm_cannot_migrate(self, placed_vm):
        placed_vm.pinned = True
        with pytest.raises(MigrationError):
            placed_vm.begin_migration("node1")

    def test_unplaced_vm_cannot_migrate(self, vm):
        with pytest.raises(MigrationError):
            vm.begin_migration("node1")

    def test_same_host_rejected(self, placed_vm):
        with pytest.raises(MigrationError):
            placed_vm.begin_migration("node0")

    def test_stall_consumed_by_advance(self, placed_vm):
        placed_vm.begin_migration("node1")
        placed_vm.advance(MIGRATION_SECONDS, 1.0, t=0.0)
        assert not placed_vm.is_stalled

    def test_no_progress_during_stall(self, placed_vm):
        placed_vm.begin_migration("node1")
        gained = placed_vm.advance(MIGRATION_SECONDS / 2.0, 1.0, t=0.0)
        assert gained == 0.0
        assert placed_vm.progress == 0.0

    def test_partial_stall_step_progresses_remainder(self, placed_vm):
        placed_vm.begin_migration("node1")
        gained = placed_vm.advance(MIGRATION_SECONDS + 600.0, 1.0, t=0.0)
        assert gained > 0.0


class TestCheckpoint:
    def test_checkpoint_stalls_resume(self, placed_vm):
        placed_vm.checkpoint()
        assert placed_vm.is_stalled
        placed_vm.advance(RESUME_SECONDS, 1.0, t=0.0)
        assert not placed_vm.is_stalled

    def test_checkpoint_does_not_shorten_migration_stall(self, placed_vm):
        placed_vm.begin_migration("node1")
        placed_vm.checkpoint()
        # The longer of the two stalls applies: after consuming less than
        # the migration stall the VM is still parked.
        placed_vm.advance(MIGRATION_SECONDS / 2.0, 1.0, t=0.0)
        assert placed_vm.is_stalled
        placed_vm.advance(max(MIGRATION_SECONDS, RESUME_SECONDS), 1.0, t=0.0)
        assert not placed_vm.is_stalled


class TestProgress:
    def test_progress_scales_with_speed(self, placed_vm):
        fast = VM(name="fast", workload=placed_vm.workload, host="n")
        slow = VM(name="slow", workload=placed_vm.workload, host="n")
        fast.advance(3600.0, 1.0, t=7200.0)
        slow.advance(3600.0, 0.4, t=7200.0)
        assert fast.progress == pytest.approx(slow.progress / 0.4)

    def test_zero_dt_no_progress(self, placed_vm):
        assert placed_vm.advance(0.0, 1.0, t=0.0) == 0.0

    def test_utilization_cached_per_timestamp(self, placed_vm):
        rng = spawn(9, "vm")
        u1 = placed_vm.utilization(1234.0, rng)
        u2 = placed_vm.utilization(1234.0, rng)
        assert u1 == u2

    def test_cache_invalidated_by_new_timestamp(self, placed_vm):
        rng = spawn(9, "vm")
        values = {placed_vm.utilization(float(t), rng) for t in range(0, 36000, 600)}
        assert len(values) > 3  # actually varies over time

    def test_stalled_vm_demands_no_cpu(self, placed_vm):
        placed_vm.begin_migration("node1")
        assert placed_vm.utilization(0.0) == 0.0
