"""Property-based tests for solar generation and workloads (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solar.irradiance import ClearSkyModel
from repro.solar.panel import PVPanel
from repro.solar.weather import DayClass, day_class_probabilities
from repro.datacenter.workloads import PAPER_WORKLOADS
from repro.rng import spawn


class TestClearSkyProperties:
    @given(t=st.floats(min_value=0.0, max_value=86400.0 * 7))
    def test_fraction_bounded(self, t):
        model = ClearSkyModel()
        assert 0.0 <= model.fraction(t) <= 1.0

    @given(
        sunrise=st.floats(min_value=4.0, max_value=9.0),
        span=st.floats(min_value=4.0, max_value=12.0),
    )
    def test_integral_below_daylight_hours(self, sunrise, span):
        model = ClearSkyModel(sunrise_h=sunrise, sunset_h=sunrise + span)
        assert 0.0 < model.daily_fraction_integral_h() < span


class TestWeatherProperties:
    @given(f=st.floats(min_value=0.0, max_value=1.0))
    def test_probabilities_valid_distribution(self, f):
        probs = day_class_probabilities(f)
        assert abs(sum(probs.values()) - 1.0) < 1e-9
        assert all(p >= -1e-12 for p in probs.values())

    @given(
        f1=st.floats(min_value=0.0, max_value=1.0),
        f2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_sunny_probability_monotone(self, f1, f2):
        lo, hi = min(f1, f2), max(f1, f2)
        assert (
            day_class_probabilities(lo)[DayClass.SUNNY]
            <= day_class_probabilities(hi)[DayClass.SUNNY] + 1e-12
        )


class TestPanelProperties:
    @given(kwh=st.floats(min_value=0.5, max_value=100.0))
    def test_sizing_roundtrip(self, kwh):
        panel = PVPanel.sized_for_daily_energy(kwh)
        assert panel.sunny_day_energy_wh() / 1000.0 == pytest.approx(kwh, rel=1e-3)


class TestWorkloadProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        name=st.sampled_from(sorted(PAPER_WORKLOADS)),
        t=st.floats(min_value=0.0, max_value=86400.0 * 3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_utilization_always_valid(self, name, t, seed):
        profile = PAPER_WORKLOADS[name]
        rng = spawn(seed, "prop")
        assert 0.0 <= profile.utilization_at(t, rng) <= 1.0

    @given(name=st.sampled_from(sorted(PAPER_WORKLOADS)))
    def test_energy_consistency(self, name):
        profile = PAPER_WORKLOADS[name]
        assert profile.energy_per_day_wh(60.0, 150.0) == pytest.approx(
            24.0 * profile.mean_power_w(60.0, 150.0)
        )

