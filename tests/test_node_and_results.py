"""Unit tests for Node plumbing and SimResult edge cases."""

import math

import pytest

from repro.datacenter.node import Node
from repro.metrics.snapshot import AgingMetrics
from repro.metrics.accumulator import MetricsAccumulator
from repro.sim.results import NodeResult, SimResult


def neutral_metrics():
    return AgingMetrics.from_accumulator(MetricsAccumulator(), 13300.0, 1.75)


def node_result(name="n0", fade_start=0.0, fade_end=0.01, **overrides):
    base = dict(
        name=name,
        fade_start=fade_start,
        fade_end=fade_end,
        discharged_ah=10.0,
        charged_ah=11.0,
        metrics=neutral_metrics(),
        downtime_s=0.0,
        low_soc_time_s=0.0,
        soc_distribution={f"SoC{i}": 0.0 for i in range(1, 8)},
        final_soc=0.9,
    )
    base.update(overrides)
    return NodeResult(**base)


class TestNode:
    def test_build_wires_names(self):
        node = Node.build("alpha")
        assert node.server.name == "alpha"
        assert node.battery.name == "alpha/battery"
        assert node.tracker.name == "alpha/battery"

    def test_default_cap_is_uncapped(self):
        assert Node.build("n").discharge_cap_w == math.inf

    def test_observe_battery_records_sample(self):
        node = Node.build("n")
        node.battery.discharge(50.0, 60.0)
        node.observe_battery(60.0)
        lifetime = node.tracker.lifetime()
        assert lifetime.discharged_ah > 0.0

    def test_is_up_reflects_server_state(self):
        node = Node.build("n")
        assert node.is_up
        node.server.brownout()
        assert not node.is_up


class TestNodeResult:
    def test_fade_added(self):
        nr = node_result(fade_start=0.05, fade_end=0.08)
        assert nr.fade_added == pytest.approx(0.03)

    def test_damage_per_day(self):
        nr = node_result(fade_start=0.0, fade_end=0.02)
        assert nr.damage_per_day(2 * 86400.0) == pytest.approx(0.01)

    def test_damage_per_day_zero_duration(self):
        assert node_result().damage_per_day(0.0) == 0.0


class TestSimResult:
    def _result(self, nodes, duration_s=86400.0):
        return SimResult(
            policy_name="t",
            duration_s=duration_s,
            throughput=100.0,
            nodes=nodes,
            total_downtime_s=0.0,
            migrations=0,
            dvfs_transitions=0,
            unserved_wh=0.0,
            feedback_wh=0.0,
        )

    def test_worst_node_by_fade(self):
        result = self._result(
            [node_result("a", fade_end=0.01), node_result("b", fade_end=0.05)]
        )
        assert result.worst_node().name == "b"

    def test_worst_node_by_ah(self):
        result = self._result(
            [
                node_result("a", discharged_ah=5.0),
                node_result("b", discharged_ah=25.0),
            ]
        )
        assert result.worst_node_by_throughput_ah().name == "b"

    def test_mean_fade(self):
        result = self._result(
            [node_result("a", fade_end=0.01), node_result("b", fade_end=0.03)]
        )
        assert result.mean_fade_added() == pytest.approx(0.02)

    def test_low_soc_fraction(self):
        result = self._result(
            [node_result("a", low_soc_time_s=43200.0), node_result("b")]
        )
        assert result.worst_low_soc_fraction() == pytest.approx(0.5)

    def test_zero_duration_guards(self):
        result = self._result([node_result("a")], duration_s=0.0)
        assert result.worst_low_soc_fraction() == 0.0
        assert result.throughput_per_day() == 0.0
