"""Tests for the observability layer (`repro.obs`).

Covers the four guarantees PR 2 makes: events arrive in emission order,
JSONL traces round-trip losslessly into typed events, the metric
registry's snapshot math is exact, and a run with observability off
never touches the bus (the near-free disabled path).
"""

from __future__ import annotations

import json

import pytest

from repro.core.policies.factory import make_policy
from repro.errors import ConfigurationError
from repro.obs import (
    BUS,
    EVENT_TYPES,
    REGISTRY,
    DayStartEvent,
    DvfsCapEvent,
    JsonlSink,
    MemorySink,
    NullSink,
    RunStartEvent,
    SocCrossingEvent,
    TraceBus,
    TraceEvent,
    VMMigratedEvent,
    VMPlacedEvent,
    disable_observability,
    enable_observability,
    event_from_dict,
    read_events,
)
from repro.obs.timers import STEP_PHASES, StepPhaseTimers, time_phase
from repro.sim.engine import Simulation


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with the layer fully off."""
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    yield
    disable_observability()
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()


# ----------------------------------------------------------------------
# Bus semantics
# ----------------------------------------------------------------------
class TestBus:
    def test_disabled_by_default(self):
        assert not TraceBus().enabled

    def test_real_sink_enables_null_sink_does_not(self):
        bus = TraceBus()
        null = bus.add_sink(NullSink())
        assert not bus.enabled, "null sink must not enable the bus"
        mem = bus.add_sink(MemorySink())
        assert bus.enabled
        bus.remove_sink(mem)
        assert not bus.enabled
        bus.remove_sink(null)

    def test_events_preserve_emission_order(self):
        bus = TraceBus()
        sink = bus.add_sink(MemorySink())
        emitted = [
            RunStartEvent(t=0.0, policy="baat", n_nodes=3, steps_total=10),
            VMPlacedEvent(t=0.0, vm="vm-1", node="node-1"),
            SocCrossingEvent(t=300.0, node="node-2", soc=0.39, threshold=0.40),
            DayStartEvent(t=86400.0, day_index=1),
        ]
        for ev in emitted:
            bus.emit(ev)
        assert list(sink.events) == emitted
        assert [e.t for e in sink.events] == sorted(e.t for e in emitted)
        assert bus.n_emitted == len(emitted)

    def test_fans_out_to_every_sink(self):
        bus = TraceBus()
        a, b = bus.add_sink(MemorySink()), bus.add_sink(MemorySink())
        bus.emit(DayStartEvent(t=0.0, day_index=0))
        assert len(a) == len(b) == 1

    def test_memory_sink_ring_drops_oldest(self):
        bus = TraceBus()
        sink = bus.add_sink(MemorySink(maxlen=3))
        for i in range(5):
            bus.emit(DayStartEvent(t=float(i), day_index=i))
        assert [e.day_index for e in sink.events] == [2, 3, 4]

    def test_capture_context_detaches(self):
        with BUS.capture() as sink:
            BUS.emit(DayStartEvent(t=0.0, day_index=0))
        assert len(sink) == 1
        assert not BUS.enabled

    def test_memory_sink_bounded_by_default(self):
        from repro.obs import DEFAULT_MEMORY_SINK_MAXLEN

        assert MemorySink().maxlen == DEFAULT_MEMORY_SINK_MAXLEN
        assert MemorySink(maxlen=None).maxlen is None  # opt-in unbounded
        with BUS.capture() as sink:
            assert sink.maxlen == DEFAULT_MEMORY_SINK_MAXLEN


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
class TestJsonlRoundTrip:
    def test_event_dict_round_trip_is_lossless(self):
        ev = VMMigratedEvent(t=1800.0, vm="vm-7", source="node-1", dest="node-3")
        assert event_from_dict(ev.to_dict()) == ev

    def test_every_registered_kind_round_trips(self):
        for kind, cls in EVENT_TYPES.items():
            ev = cls()
            back = event_from_dict(json.loads(ev.to_json()))
            assert type(back) is cls and back == ev, kind

    def test_jsonl_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        emitted = [
            RunStartEvent(t=0.0, policy="baat", n_nodes=3, steps_total=2),
            DvfsCapEvent(t=600.0, node="node-2", freq_index=1, freq=0.8),
            VMMigratedEvent(t=600.0, vm="vm-1", source="node-2", dest="node-1"),
        ]
        sink = JsonlSink(path)
        BUS.add_sink(sink)
        for ev in emitted:
            BUS.emit(ev)
        BUS.remove_sink(sink)
        sink.close()
        assert sink.n_written == len(emitted)
        assert read_events(path) == emitted

    def test_close_is_flush_idempotent(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        sink.emit(DayStartEvent(t=0.0, day_index=0))
        sink.close()
        assert read_events(path) == [DayStartEvent(t=0.0, day_index=0)]
        sink.close()  # second close: no error, file unchanged
        assert read_events(path) == [DayStartEvent(t=0.0, day_index=0)]

    def test_close_leaves_borrowed_streams_open(self, tmp_path):
        with open(tmp_path / "trace.jsonl", "w", encoding="utf-8") as fh:
            sink = JsonlSink(fh)
            sink.emit(DayStartEvent(t=0.0, day_index=0))
            sink.close()  # flushes, but the caller owns the handle
            assert not fh.closed
            fh.write("")  # still usable
        assert read_events(str(tmp_path / "trace.jsonl")) == [
            DayStartEvent(t=0.0, day_index=0)
        ]

    def test_unknown_fields_dropped_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"kind": "day_start", "t": 0.0, "day_index": 2, "new": 1})
            + "\n"
            + json.dumps({"kind": "from_the_future", "t": 1.0})
            + "\n"
        )
        with pytest.raises(ConfigurationError):
            read_events(str(path))
        lenient = read_events(str(path), strict=False)
        assert lenient == [DayStartEvent(t=0.0, day_index=2)]


# ----------------------------------------------------------------------
# Rotation and compression
# ----------------------------------------------------------------------
class TestJsonlRotationAndGzip:
    def _emit_days(self, sink, n):
        events = [DayStartEvent(t=120.0 * i, day_index=i) for i in range(n)]
        for ev in events:
            sink.emit(ev)
        sink.close()
        return events

    def test_event_count_rotation_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, rotate_events=4)
        events = self._emit_days(sink, 10)
        assert sink.segment_paths == [path, f"{path}.1", f"{path}.2"]
        for segment in sink.segment_paths:
            assert (tmp_path / segment.rsplit("/", 1)[1]).exists()
        # One read walks every segment transparently, in write order.
        assert read_events(path) == events

    def test_byte_rotation_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, rotate_bytes=120)
        events = self._emit_days(sink, 12)
        assert len(sink.segment_paths) > 1
        assert read_events(path) == events

    def test_gzip_suffix_implies_compression(self, tmp_path):
        path = str(tmp_path / "trace.jsonl.gz")
        sink = JsonlSink(path)
        events = self._emit_days(sink, 5)
        import gzip

        with gzip.open(path, "rt") as fh:
            assert len(fh.readlines()) == 5
        assert read_events(path) == events

    def test_compress_flag_appends_gz_suffix(self, tmp_path):
        base = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(base, compress=True, rotate_events=2)
        events = self._emit_days(sink, 5)
        assert sink.path == f"{base}.gz"
        assert sink.segment_paths == [
            f"{base}.gz", f"{base}.1.gz", f"{base}.2.gz"
        ]
        # Readers given the *uncompressed* base name fall back to .gz.
        assert read_events(base) == events
        assert read_events(f"{base}.gz") == events

    def test_stream_target_rejects_rotation_and_compression(self, tmp_path):
        with open(tmp_path / "trace.jsonl", "w", encoding="utf-8") as fh:
            with pytest.raises(ConfigurationError):
                JsonlSink(fh, rotate_events=4)
            with pytest.raises(ConfigurationError):
                JsonlSink(fh, compress=True)

    def test_enable_observability_passes_rotation_through(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = enable_observability(path, rotate_events=3, compress=True)
        try:
            for i in range(7):
                BUS.emit(DayStartEvent(t=120.0 * i, day_index=i))
        finally:
            disable_observability()
        assert sink.path == f"{path}.gz"
        assert len(sink.segment_paths) == 3
        assert len(read_events(path)) == 7


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
class TestMetricRegistry:
    def test_snapshot_math(self):
        from repro.obs import MetricRegistry

        reg = MetricRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2.0)
        reg.gauge("soc").set(0.25)
        reg.gauge("soc").set(0.75)
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 6.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3.0}
        assert snap["gauges"] == {"soc": 0.75}
        assert snap["histograms"]["lat"] == {
            "count": 3,
            "total": 9.0,
            "mean": 3.0,
            "min": 1.0,
            "max": 6.0,
            "p50": pytest.approx(2.0),
            "p95": pytest.approx(5.6),
            "p99": pytest.approx(5.92),
        }

    def test_empty_histogram_reports_zeros(self):
        from repro.obs import Histogram

        h = Histogram("empty")
        assert h.to_dict() == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_handles_are_shared(self):
        from repro.obs import MetricRegistry

        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_sample_appends_timestamped_snapshots(self):
        from repro.obs import MetricRegistry

        reg = MetricRegistry()
        reg.counter("steps").inc()
        reg.sample(86400.0)
        reg.counter("steps").inc()
        reg.sample(172800.0)
        assert [s["t"] for s in reg.samples] == [86400.0, 172800.0]
        assert [s["counters"]["steps"] for s in reg.samples] == [1.0, 2.0]

    def test_reset_clears_metrics_keeps_enabled(self):
        from repro.obs import MetricRegistry

        reg = MetricRegistry()
        reg.enabled = True
        reg.counter("x").inc()
        reg.sample(0.0)
        reg.reset()
        assert reg.enabled
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert reg.samples == []


# ----------------------------------------------------------------------
# Phase timers
# ----------------------------------------------------------------------
class TestPhaseTimers:
    def test_step_phase_timers_observe_into_registry(self):
        from repro.obs import MetricRegistry

        reg = MetricRegistry()
        reg.enabled = True
        timers = StepPhaseTimers(reg)
        for name in STEP_PHASES:
            getattr(timers, name).observe(0.5)
        snap = reg.snapshot()
        for name in STEP_PHASES:
            assert snap["histograms"][f"phase/{name}"]["count"] == 1

    def test_time_phase_noop_when_disabled(self):
        from repro.obs import MetricRegistry

        reg = MetricRegistry()
        with time_phase(reg, "control"):
            pass
        assert reg.snapshot()["histograms"] == {}
        reg.enabled = True
        with time_phase(reg, "control"):
            pass
        assert reg.snapshot()["histograms"]["phase/control"]["count"] == 1


# ----------------------------------------------------------------------
# Disabled path: a full run must never touch the bus
# ----------------------------------------------------------------------
class TestDisabledPathNoOp:
    def test_disabled_run_never_emits(
        self, tiny_scenario, one_sunny_day, monkeypatch
    ):
        """With no sinks attached, a full simulation makes zero emit calls.

        ``TraceBus.emit`` is patched to raise, so any unguarded call site
        fails the run instead of silently costing allocations.
        """

        def _boom(self, event):
            raise AssertionError(f"emit on disabled bus: {event!r}")

        monkeypatch.setattr(TraceBus, "emit", _boom)
        sim = Simulation(tiny_scenario, make_policy("baat"), one_sunny_day)
        result = sim.run()
        assert result is not None
        assert sim.steps_done == sim.steps_total

    def test_disabled_registry_records_nothing(self, tiny_scenario, one_sunny_day):
        sim = Simulation(tiny_scenario, make_policy("baat"), one_sunny_day)
        sim.run()
        snap = REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_steps_done_valid_before_run(self, tiny_scenario, one_sunny_day):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        assert sim.steps_done == 0


# ----------------------------------------------------------------------
# Instrumented run: the acceptance trio shows up with names and times
# ----------------------------------------------------------------------
class TestInstrumentedRun:
    def test_traced_run_produces_lifecycle_events(self, tiny_scenario, one_sunny_day):
        with BUS.capture() as sink:
            sim = Simulation(tiny_scenario, make_policy("baat"), one_sunny_day)
            sim.run()
        kinds = {e.kind for e in sink.events}
        assert "run_start" in kinds
        assert "vm_placed" in kinds
        placed = [e for e in sink.events if e.kind == "vm_placed"]
        assert all(e.node and e.vm for e in placed)
        # The trace_meta header leads, then run_start, then everything.
        assert sink.events[0].kind == "trace_meta"
        assert sink.events[1].kind == "run_start"

    def test_enable_observability_writes_jsonl(
        self, tiny_scenario, one_sunny_day, tmp_path
    ):
        path = str(tmp_path / "run.jsonl")
        sink = enable_observability(path)
        try:
            Simulation(tiny_scenario, make_policy("baat"), one_sunny_day).run()
        finally:
            disable_observability()
        assert sink is not None and sink.n_written > 0
        events = read_events(path)
        assert events and events[0].kind == "trace_meta"
        assert events[1].kind == "run_start"
        # Registry picked up recorder + phase metrics during the run.
        snap_keys = REGISTRY.snapshot()["histograms"].keys()
        assert {f"phase/{p}" for p in STEP_PHASES} <= set(snap_keys)

    def test_event_timestamps_monotonic_per_run(self, tiny_scenario, one_sunny_day):
        with BUS.capture() as sink:
            Simulation(tiny_scenario, make_policy("baat"), one_sunny_day).run()
        times = [e.t for e in sink.events]
        assert times == sorted(times)


# ----------------------------------------------------------------------
# to_dict shape
# ----------------------------------------------------------------------
class TestEventShape:
    def test_kind_is_first_key(self):
        keys = list(VMPlacedEvent(t=1.0, vm="v", node="n").to_dict())
        assert keys[0] == "kind"

    def test_base_event_not_registered(self):
        # Only subclasses auto-register; the abstract base stays out.
        assert "event" not in EVENT_TYPES
