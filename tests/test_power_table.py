"""Unit tests for the power table (Table-2 logs)."""

import pytest

from repro.core.power_table import PowerTable
from repro.errors import ConfigurationError


class TestPowerTable:
    def test_record_and_history(self, battery):
        table = PowerTable()
        battery.discharge(100.0, 60.0)
        table.record(battery.sample())
        battery.discharge(100.0, 60.0)
        table.record(battery.sample())
        history = table.history(battery.name)
        assert len(history) == 2
        assert history[0].time_s < history[1].time_s

    def test_entries_carry_table2_variables(self, battery):
        table = PowerTable()
        battery.discharge(100.0, 60.0)
        table.record(battery.sample())
        entry = table.latest(battery.name)
        assert entry.current_a > 0.0
        assert entry.voltage_v > 0.0
        assert entry.temperature_c > 0.0
        assert entry.time_s > 0.0

    def test_ring_bounded(self, battery):
        table = PowerTable(max_entries_per_battery=5)
        for _ in range(10):
            battery.rest(60.0)
            table.record(battery.sample())
        assert len(table.history(battery.name)) == 5

    def test_latest_without_history_raises(self):
        with pytest.raises(ConfigurationError):
            PowerTable().latest("ghost")

    def test_batteries_listing(self, battery):
        table = PowerTable()
        table.record(battery.sample())
        assert table.batteries() == [battery.name]

    def test_len_counts_all_entries(self, battery):
        table = PowerTable()
        table.record(battery.sample())
        table.record(battery.sample())
        assert len(table) == 2

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            PowerTable(max_entries_per_battery=0)
