"""Unit tests for the clear-sky irradiance model."""

import pytest

from repro.errors import ConfigurationError
from repro.solar.irradiance import ClearSkyModel
from repro.units import hours


@pytest.fixture
def model():
    return ClearSkyModel()


class TestShape:
    def test_zero_at_night(self, model):
        assert model.fraction(hours(2)) == 0.0
        assert model.fraction(hours(23)) == 0.0

    def test_zero_at_sunrise_and_sunset(self, model):
        assert model.fraction(hours(model.sunrise_h)) == 0.0
        assert model.fraction(hours(model.sunset_h)) == 0.0

    def test_peak_at_solar_noon(self, model):
        noon = hours((model.sunrise_h + model.sunset_h) / 2.0)
        assert model.fraction(noon) == pytest.approx(1.0)

    def test_symmetry(self, model):
        mid = (model.sunrise_h + model.sunset_h) / 2.0
        a = model.fraction(hours(mid - 2.0))
        b = model.fraction(hours(mid + 2.0))
        assert a == pytest.approx(b)

    def test_periodic_across_days(self, model):
        assert model.fraction(hours(12)) == pytest.approx(
            model.fraction(hours(12 + 24))
        )

    def test_bounded(self, model):
        for h10 in range(0, 240):
            assert 0.0 <= model.fraction(hours(h10 / 10.0)) <= 1.0


class TestIntegral:
    def test_daily_integral_reasonable(self, model):
        """A 12.5-hour daylight window integrates to roughly 7-8
        full-output hours."""
        integral = model.daily_fraction_integral_h()
        assert 5.0 < integral < 10.0

    def test_integral_grows_with_daylight(self):
        short = ClearSkyModel(sunrise_h=8.0, sunset_h=16.0)
        long = ClearSkyModel(sunrise_h=5.0, sunset_h=21.0)
        assert long.daily_fraction_integral_h() > short.daily_fraction_integral_h()


class TestValidation:
    def test_rejects_inverted_window(self):
        with pytest.raises(ConfigurationError):
            ClearSkyModel(sunrise_h=19.0, sunset_h=6.0)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            ClearSkyModel(exponent=0.0)
