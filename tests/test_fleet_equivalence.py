"""Golden equivalence: the fleet stepper is bit-identical to the reference.

The vectorized struct-of-arrays fast path (``stepper="fleet"``) promises
*exact* reproduction of the per-node reference stepper — not "close",
the same floats. These tests run both steppers over multi-day traces and
require the full :class:`SimResult`, every recorder series, the SoC
residence/low-SoC accumulators, and the engine RNG's end-of-run state to
match exactly. Any reordering of float operations or RNG draws in the
fast path shows up here as a hard failure.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.policies.factory import make_policy
from repro.datacenter.workloads import PAPER_WORKLOADS, standard_mix
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

THREE_DAYS = [DayClass.SUNNY, DayClass.CLOUDY, DayClass.RAINY]


def _workloads(*names):
    return tuple(PAPER_WORKLOADS[n] for n in names)


def _run(scenario: Scenario, policy_name: str, days):
    trace = scenario.trace_generator().days(days)
    sim = Simulation(scenario, make_policy(policy_name), trace, record_series=True)
    result = sim.run()
    return sim, result


def _assert_equivalent(ref_scenario: Scenario, policy_name: str, days):
    fleet_scenario = dataclasses.replace(ref_scenario, stepper="fleet")
    ref_sim, ref = _run(ref_scenario, policy_name, days)
    fleet_sim, fleet = _run(fleet_scenario, policy_name, days)
    _assert_runs_match(ref_sim, ref, fleet_sim, fleet)
    return ref_sim, fleet_sim


def _assert_runs_match(ref_sim, ref, fleet_sim, fleet):

    # Whole-run outcome: frozen dataclass equality covers throughput,
    # downtime, migrations, unserved/feedback energy, and every per-node
    # NodeResult (fade, Ah, metrics, SoC distribution, final SoC).
    assert fleet == ref

    # Recorder series must be the same floats, sample by sample.
    ref_arrays = ref_sim.recorder.as_arrays()
    fleet_arrays = fleet_sim.recorder.as_arrays()
    assert set(fleet_arrays) == set(ref_arrays)
    for key, ref_arr in ref_arrays.items():
        assert np.array_equal(fleet_arrays[key], ref_arr), key

    # Accumulated distributions (Fig. 18/19 inputs).
    for name in ref_sim.recorder.node_names:
        assert np.array_equal(
            fleet_sim.recorder.soc_time_s[name], ref_sim.recorder.soc_time_s[name]
        )
    assert fleet_sim.recorder.low_soc_time_s == ref_sim.recorder.low_soc_time_s

    # Same number and order of RNG draws: the generators end in the same
    # state, so the equivalence holds for any continuation of the run.
    assert (
        fleet_sim._rng.bit_generator.state == ref_sim._rng.bit_generator.state
    )


class TestGoldenEquivalence:
    """ISSUE acceptance: e-Buff and BAAT over a >= 3-day trace."""

    @pytest.mark.parametrize("policy_name", ["e-buff", "baat"])
    def test_three_day_mixed_trace(self, policy_name):
        scenario = Scenario(n_nodes=6, dt_s=300.0)
        _assert_equivalent(scenario, policy_name, THREE_DAYS)


class TestStressEquivalence:
    """Harder corners: aged fleets, rainy stretches, utility backing."""

    def test_old_batteries_rainy_days(self):
        scenario = Scenario(
            n_nodes=4,
            dt_s=300.0,
            initial_fade=0.12,
            workloads=_workloads("web_serving", "data_analytics", "word_count"),
        )
        _assert_equivalent(
            scenario, "baat", [DayClass.RAINY, DayClass.RAINY, DayClass.CLOUDY]
        )

    def test_utility_budget_low_soc(self):
        scenario = Scenario(
            n_nodes=4,
            dt_s=300.0,
            utility_budget_w=150.0,
            initial_soc=0.5,
            workloads=_workloads("web_serving", "kmeans_clustering"),
        )
        _assert_equivalent(
            scenario, "e-buff", [DayClass.CLOUDY, DayClass.RAINY, DayClass.SUNNY]
        )

    @pytest.mark.parametrize("policy_name", ["baat-s", "baat-h"])
    def test_single_knob_policies(self, policy_name):
        scenario = Scenario(
            n_nodes=3,
            dt_s=300.0,
            workloads=_workloads("web_serving", "data_analytics", "word_count"),
        )
        _assert_equivalent(scenario, policy_name, [DayClass.CLOUDY] * 3)


class TestActionRichFleetEquivalence:
    """A 48-node under-provisioned fleet where every BAAT action class
    fires: slowdown migrations, consolidation epochs, and parks.

    This is the scenario the vectorized control plane must survive: the
    array decision kernels run every pass, but triggers force frequent
    fallbacks into the object-path action ladders, so any drift in the
    batched predicates (thresholds, reserve, rationing, budget, wake
    accounting) diverges the runs and fails the golden comparison.
    """

    def _scenario(self):
        mix = standard_mix()
        profiles = tuple(
            dataclasses.replace(
                mix[i % len(mix)], name=f"{mix[i % len(mix)].name}-{i}"
            )
            for i in range(24)
        )
        return Scenario(
            n_nodes=48,
            dt_s=300.0,
            initial_soc=0.55,
            sunny_day_kwh=24.0,
            workloads=profiles,
        )

    def test_48_node_stressed_baat(self):
        ref_sim, fleet_sim = _assert_equivalent(
            self._scenario(), "baat", THREE_DAYS
        )
        # The comparison is only meaningful if the hard cases actually
        # happened; guard against the scenario rotting into a quiet one.
        result_migrations = sum(
            vm.migrations for vm in fleet_sim.cluster.vms.values()
        )
        assert result_migrations > 0
        assert fleet_sim.policy.monitor.migrations > 0  # Fig.-9 ladder
        assert fleet_sim.policy.consolidations > 0
        parked = sum(1 for n in fleet_sim.cluster if n.server.policy_off)
        assert parked > 0
        # Both steppers took identical actions, not merely similar ones.
        assert ref_sim.policy.consolidations == fleet_sim.policy.consolidations
        assert ref_sim.policy.monitor.migrations == fleet_sim.policy.monitor.migrations
        assert ref_sim.policy.monitor.parks == fleet_sim.policy.monitor.parks
        assert ref_sim.policy.monitor.throttles == fleet_sim.policy.monitor.throttles


class TestTracedEquivalence:
    """The golden contract extends to telemetry: tracing either stepper
    yields the same event stream, in per-node events and in columnar
    frames, and a frame-mode trace replays to the engine's metrics.
    """

    DAYS = [DayClass.CLOUDY, DayClass.SUNNY]

    def _traced_events(self, scenario, telemetry):
        from repro.obs import BUS, TELEMETRY, TelemetryPolicy, parse_telemetry

        BUS.clear_sinks()
        TELEMETRY.set_policy(parse_telemetry(telemetry))
        try:
            with BUS.capture(maxlen=None) as sink:
                _run(scenario, "baat", self.DAYS)
                return [e.to_dict() for e in sink.events]
        finally:
            BUS.clear_sinks()
            TELEMETRY.set_policy(TelemetryPolicy())

    def _both_streams(self, telemetry):
        scenario = Scenario(n_nodes=6, dt_s=300.0)
        ref = self._traced_events(scenario, telemetry)
        fleet = self._traced_events(
            dataclasses.replace(scenario, stepper="fleet"), telemetry
        )
        return ref, fleet

    @staticmethod
    def _split_meta(events):
        meta = [e for e in events if e["kind"] == "trace_meta"]
        rest = [e for e in events if e["kind"] != "trace_meta"]
        return meta, rest

    def test_event_mode_streams_identical(self):
        ref, fleet = self._both_streams("full-events")
        ref_meta, ref_rest = self._split_meta(ref)
        fleet_meta, fleet_rest = self._split_meta(fleet)
        # trace_meta records which stepper ran — the only sanctioned
        # difference between the two traces.
        assert [m["stepper"] for m in ref_meta] == ["reference"]
        assert [m["stepper"] for m in fleet_meta] == ["fleet"]
        assert fleet_rest == ref_rest
        samples = [e for e in ref_rest if e["kind"] == "battery_sample"]
        steps = len(self.DAYS) * int(86400 / 300)
        assert len(samples) == 6 * steps

    def test_frame_mode_streams_identical(self):
        ref, fleet = self._both_streams("full")
        _, ref_rest = self._split_meta(ref)
        _, fleet_rest = self._split_meta(fleet)
        assert fleet_rest == ref_rest
        frames = [e for e in ref_rest if e["kind"] == "battery_frame"]
        assert len(frames) == len(self.DAYS) * int(86400 / 300)
        assert not any(e["kind"] == "battery_sample" for e in ref_rest)

    def test_frame_trace_replays_to_engine_metrics(self, tmp_path):
        import math

        from repro.obs import (
            FleetHealthModel,
            disable_observability,
            enable_observability,
        )
        from repro.obs.health import METRIC_NAMES

        scenario = Scenario(n_nodes=6, dt_s=300.0, stepper="fleet")
        path = str(tmp_path / "frames.jsonl")
        enable_observability(path, telemetry="full")
        try:
            sim, _ = _run(scenario, "baat", self.DAYS)
        finally:
            disable_observability()
        model = FleetHealthModel.from_trace(path)
        assert len(model.runs) == 1
        run = model.runs[0]
        assert run.telemetry == "full"
        assert run.stepper == "fleet"
        for node in sim.cluster:
            engine_side = node.tracker.lifetime()
            replay_side = run.batteries[node.name].metrics()
            for name in METRIC_NAMES + ("dr_peak",):
                a = getattr(engine_side, name)
                b = getattr(replay_side, name)
                if math.isinf(a) or math.isinf(b):
                    assert a == b, name
                else:
                    assert b == pytest.approx(a, rel=1e-6, abs=1e-9), name


class TestStepperSelection:
    def test_unknown_stepper_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(stepper="warp")

    def test_fleet_requires_per_server(self):
        with pytest.raises(ConfigurationError):
            Scenario(stepper="fleet", architecture="rack-pool")

    def test_fleet_stepper_builds_fleet_power_path(self):
        from repro.sim.fleet import FleetPowerPath

        scenario = Scenario(n_nodes=3, dt_s=300.0, stepper="fleet")
        trace = scenario.trace_generator().day(DayClass.SUNNY)
        sim = Simulation(scenario, make_policy("e-buff"), trace)
        assert isinstance(sim.power_path, FleetPowerPath)
