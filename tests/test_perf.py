"""Perf observatory: history store, payload ingest, regression math,
and the ``repro perf`` CLI family (record / history / diff / check)."""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.perf import (
    COLD_START_MESSAGE,
    MIN_BASELINE,
    STORE_SCHEMA,
    PerfHistory,
    PerfRecord,
    baseline_stats,
    change_point,
    check_history,
    collect_meta,
    default_history_path,
    detect_source,
    extract_metrics,
    host_fingerprint,
    metric_direction,
    sparkline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_ENGINE = REPO_ROOT / "BENCH_engine.json"


def _meta(sha="a" * 40, host="benchhost"):
    meta = {
        "git_sha": sha,
        "branch": "main",
        "timestamp": "2026-01-01T00:00:00Z",
        "host": host,
        "platform": "Linux-x86_64",
        "python": "3.11.9",
        "numpy": "2.4.0",
    }
    meta["fingerprint"] = host_fingerprint(meta)
    return meta


def _seed(history, values, metric="engine/n48/fleet_s", host="benchhost"):
    """Append one single-metric record per value, distinct shas."""
    for i, value in enumerate(values):
        history.append(
            PerfRecord(
                source="engine_bench",
                meta=_meta(sha=f"{i:03d}" + "e" * 37, host=host),
                metrics={metric: value},
            )
        )


class TestMeta:
    def test_collect_meta_is_self_describing(self):
        meta = collect_meta()
        for key in (
            "git_sha", "branch", "timestamp", "host", "platform",
            "python", "numpy", "fingerprint",
        ):
            assert key in meta, key
        # In this repo the sha must resolve; the fingerprint embeds
        # feature versions only (py3.11, not py3.11.9).
        assert len(meta["git_sha"]) == 40
        assert "|py" in meta["fingerprint"]
        assert meta["fingerprint"].count(".") <= 2

    def test_host_env_override_pins_the_fingerprint(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_HOST", "gha-Linux")
        meta = collect_meta()
        assert meta["host"] == "gha-Linux"
        assert meta["fingerprint"].startswith("gha-Linux|")

    def test_history_env_overrides_default_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_HISTORY", "/elsewhere/h.jsonl")
        assert default_history_path() == "/elsewhere/h.jsonl"

    def test_fingerprint_prefers_stamped_value(self):
        assert host_fingerprint({"fingerprint": "frozen"}) == "frozen"


class TestIngest:
    def test_detects_all_four_sources(self):
        assert detect_source({"engine_bench": {}}) == "engine_bench"
        assert detect_source({"benches": {}}) == "bench_suite"
        assert detect_source({"obs_overhead": {}}) == "obs_overhead"
        assert detect_source({"campaign": {}, "cells": {}}) == "campaign_summary"
        with pytest.raises(ConfigurationError):
            detect_source({"something": 1})

    def test_flattens_the_committed_engine_bench(self):
        data = json.loads(BENCH_ENGINE.read_text(encoding="utf-8"))
        source, metrics = extract_metrics(data)
        assert source == "engine_bench"
        assert metrics["engine/n48/speedup"] > 0
        assert "engine/n48/fleet_steps_per_s" in metrics
        assert "engine/curve/n1024/control_us_per_step" in metrics
        assert "engine/phase/fleet/control_total_s" in metrics
        # gate booleans must not become series
        assert not any("ok" in name for name in metrics)

    def test_bench_suite_skips_failures_and_folds_obs(self):
        data = {
            "benches": {
                "benchmarks/bench_x.py::test_a": {
                    "wall_s": 1.5, "outcome": "passed"},
                "benchmarks/bench_x.py::test_b": {
                    "wall_s": 9.9, "outcome": "failed"},
            },
            "obs_overhead": {"disabled_s": 0.2, "null_overhead_pct": 1.0},
        }
        source, metrics = extract_metrics(data)
        assert source == "bench_suite"
        assert metrics["bench/bench_x:test_a/wall_s"] == 1.5
        assert not any("test_b" in name for name in metrics)
        assert metrics["obs/disabled_s"] == 0.2

    def test_campaign_summary_rollup(self):
        data = {
            "campaign": {"wall_s": 12.0, "n_cells": 4},
            "cells": {"done": 4},
            "throughput": {"cells_per_s": 0.33},
            "cache": {"hit_rate": 0.5},
            "wall_time_s": {"p50": 2.5, "p95": 4.0, "count": 4},
            "health": {"score_max": 1.2, "nat_max": 0.1},
        }
        _, metrics = extract_metrics(data)
        assert metrics["campaign/wall_s"] == 12.0
        assert metrics["campaign/cells_per_s"] == 0.33
        assert metrics["campaign/cell_wall_s/p95"] == 4.0
        assert metrics["campaign/health/score_max"] == 1.2

    def test_empty_payload_raises(self):
        with pytest.raises(ConfigurationError):
            extract_metrics({"engine_bench": {}})


class TestStore:
    def test_round_trip(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        record = history.record_payload(
            {"obs_overhead": {"disabled_s": 0.25}, "meta": _meta()}
        )
        assert record.schema == STORE_SCHEMA
        (read,) = history.records()
        assert read.metrics == {"obs/disabled_s": 0.25}
        assert read.sha == "a" * 40
        assert read.fingerprint == record.fingerprint

    def test_newer_schema_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = PerfHistory(str(path))
        _seed(history, [1.0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"schema": STORE_SCHEMA + 1}) + "\n")
            fh.write("{not json\n")
        assert len(history.records()) == 1
        assert history.n_skipped == 2

    def test_payload_meta_wins_over_fresh_collection(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        record = history.record_payload(
            {"obs_overhead": {"disabled_s": 0.1},
             "meta": _meta(sha="f" * 40, host="elsewhere")}
        )
        assert record.sha == "f" * 40
        assert record.meta["host"] == "elsewhere"

    def test_series_and_names_scope_by_fingerprint(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        _seed(history, [1.0, 2.0], host="hostA")
        _seed(history, [9.0], host="hostB")
        fp = host_fingerprint(_meta(host="hostA"))
        pairs = history.series("engine/n48/fleet_s", fingerprint=fp)
        assert [v for _, v in pairs] == [1.0, 2.0]
        assert history.metric_names() == ["engine/n48/fleet_s"]
        assert history.latest(fingerprint=fp).metrics["engine/n48/fleet_s"] == 2.0

    def test_missing_file_reads_empty(self, tmp_path):
        assert PerfHistory(str(tmp_path / "absent.jsonl")).records() == []


class TestRegressionMath:
    def test_direction_inference(self):
        assert metric_direction("engine/n48/fleet_s") == "lower"
        assert metric_direction("engine/n48/fleet_steps_per_s") == "higher"
        assert metric_direction("obs/null_overhead_pct") == "lower"
        assert metric_direction("obs/fleet/size_win_x") == "higher"
        assert metric_direction("campaign/hit_rate") == "higher"
        assert metric_direction("campaign/cell_wall_s/p95") == "lower"
        assert metric_direction("campaign/n_cells") is None
        assert metric_direction("campaign/health/score_max") == "lower"

    def test_sigma_floor_protects_flat_series(self):
        stats = baseline_stats([1.0, 1.0, 1.0, 1.0])
        assert stats.sigma == pytest.approx(0.05)  # REL_FLOOR * |median|

    def test_two_x_slowdown_regresses(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        _seed(history, [1.0, 1.01, 0.99, 1.0, 2.0])
        result = check_history(history)
        (check,) = result.regressions
        assert check.metric == "engine/n48/fleet_s"
        assert check.deviation > 4.0
        assert not result.ok

    def test_noise_within_baseline_passes(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        _seed(history, [1.0, 1.05, 0.95, 1.02, 1.06])
        result = check_history(history)
        assert result.ok and result.checks

    def test_throughput_drop_regresses_higher_better(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        _seed(history, [1000.0, 990.0, 1010.0, 480.0],
              metric="engine/n48/fleet_steps_per_s")
        result = check_history(history)
        assert [c.metric for c in result.regressions] == [
            "engine/n48/fleet_steps_per_s"
        ]

    def test_improvement_never_regresses(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        _seed(history, [1.0, 1.01, 0.99, 1.0, 0.5])
        assert check_history(history).ok

    def test_cold_paths_yield_no_baseline_not_errors(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        result = check_history(history)  # empty file
        assert result.ok and result.cold and result.candidate is None
        _seed(history, [1.0, 1.0])  # 1 prior < MIN_BASELINE
        result = check_history(history)
        assert result.ok and result.cold
        assert result.no_baseline == ["engine/n48/fleet_s"]
        assert MIN_BASELINE == 3

    def test_new_fingerprint_is_cold(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        _seed(history, [1.0, 1.0, 1.0, 1.0], host="hostA")
        _seed(history, [99.0], host="hostB")  # newest record, other host
        result = check_history(history)
        assert result.ok and result.cold
        assert result.fingerprint == host_fingerprint(_meta(host="hostB"))

    def test_explicit_candidate_does_not_need_appending(self, tmp_path):
        history = PerfHistory(str(tmp_path / "h.jsonl"))
        _seed(history, [1.0, 1.0, 1.0, 1.0])
        candidate = PerfRecord(
            source="engine_bench", meta=_meta(sha="c" * 40),
            metrics={"engine/n48/fleet_s": 2.2},
        )
        result = check_history(history, candidate=candidate)
        assert not result.ok
        assert len(history.records()) == 4  # nothing appended

    def test_change_point_locates_the_shift(self):
        values = [1.0, 1.01, 0.99, 1.0, 2.0, 2.02, 1.98, 2.0]
        change = change_point(values)
        assert change is not None
        assert 3 <= change.index <= 5  # floored sigmas tie adjacent splits
        assert change.before == pytest.approx(1.0, abs=0.02)
        assert change.after == pytest.approx(2.0, abs=0.02)
        assert change_point([1.0, 1.01, 0.99, 1.0, 1.02, 0.98]) is None

    def test_sparkline_shape(self):
        line = sparkline([1.0, 2.0, 3.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([5.0, 5.0]) == "▁▁"
        assert sparkline([]) == ""


@pytest.fixture()
def history_path(tmp_path):
    return str(tmp_path / "perf-history.jsonl")


class TestPerfCLI:
    def test_record_and_cold_check_round_trip(self, history_path, capsys):
        assert main(
            ["perf", "record", str(BENCH_ENGINE), "--history", history_path]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded engine_bench" in out
        assert main(["perf", "check", "--history", history_path]) == 0
        assert COLD_START_MESSAGE in capsys.readouterr().out

    def test_check_on_empty_history_passes(self, history_path, capsys):
        assert main(["perf", "check", "--history", history_path]) == 0
        assert COLD_START_MESSAGE in capsys.readouterr().out

    def test_injected_slowdown_fails_naming_the_metric(
        self, history_path, capsys
    ):
        history = PerfHistory(history_path)
        _seed(history, [1.0, 1.01, 0.99, 1.0])
        _seed(history, [2.08])
        assert main(["perf", "check", "--history", history_path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION engine/n48/fleet_s" in out
        assert "sigma" in out
        # an unmodified re-run of the same history still fails the same
        # way (the check is pure), while trimming the bad record passes
        assert main(["perf", "check", "--history", history_path]) == 1
        capsys.readouterr()

    def test_check_trace_validates_and_exports(self, history_path, tmp_path, capsys):
        from repro.obs.export import parse_openmetrics

        history = PerfHistory(history_path)
        _seed(history, [1.0, 1.0, 1.0, 1.0, 2.5])
        trace = str(tmp_path / "perf-check.jsonl")
        prom = str(tmp_path / "perf.prom")
        assert main(
            ["perf", "check", "--history", history_path,
             "--trace", trace, "--export", prom]
        ) == 1
        out = capsys.readouterr().out
        assert "telemetry event(s)" in out
        assert main(["trace", "validate", trace]) == 0
        assert "-> OK" in capsys.readouterr().out
        parsed = parse_openmetrics(
            Path(prom).read_text(encoding="utf-8")
        )
        assert parsed["counter"]["repro_perf_regressions_total"] == 1.0
        assert "repro_perf_metrics_checked" in parsed["gauge"]

    def test_check_judges_payload_files_without_recording(
        self, history_path, capsys
    ):
        history = PerfHistory(history_path)
        data = json.loads(BENCH_ENGINE.read_text(encoding="utf-8"))
        for _ in range(4):
            history.record_payload(dict(data))
        assert main(
            ["perf", "check", str(BENCH_ENGINE), "--history", history_path]
        ) == 0
        out = capsys.readouterr().out
        assert "no regressions outside baseline" in out
        assert len(history.records()) == 4

    def test_history_lists_and_plots(self, history_path, capsys):
        history = PerfHistory(history_path)
        _seed(history, [1.0, 1.2, 1.4, 1.6])
        assert main(["perf", "history", "--history", history_path]) == 0
        assert "engine/n48/fleet_s" in capsys.readouterr().out
        assert main(
            ["perf", "history", "engine/n48/fleet_s",
             "--history", history_path]
        ) == 0
        out = capsys.readouterr().out
        assert "▁" in out and "█" in out  # sparkline ramp
        assert "better=lower" in out
        assert "000eee" in out  # sha column

    def test_history_suggests_close_matches(self, history_path, capsys):
        _seed(PerfHistory(history_path), [1.0])
        assert main(
            ["perf", "history", "fleet_s", "--history", history_path]
        ) == 1
        assert "close matches" in capsys.readouterr().out

    def test_diff_marks_the_worse_side(self, history_path, capsys):
        history = PerfHistory(history_path)
        _seed(history, [1.0, 2.0])
        assert main(
            ["perf", "diff", "000e", "001e", "--history", history_path]
        ) == 0
        out = capsys.readouterr().out
        assert "+100.0%" in out
        assert "B worse" in out

    def test_record_rejects_unknown_payloads(self, history_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"mystery": 1}', encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["perf", "record", str(bad), "--history", history_path])


class TestObsWiring:
    def test_perf_regression_event_round_trips(self):
        from repro.obs import PerfRegressionEvent
        from repro.obs.events import EVENT_TYPES, event_from_dict

        assert EVENT_TYPES["perf_regression"] is PerfRegressionEvent
        event = PerfRegressionEvent(
            t=0.0, metric="engine/n48/fleet_s", value=2.0, baseline=1.0,
            sigma=0.05, deviation=20.0, direction="lower", sha="abc",
        )
        back = event_from_dict(event.to_dict())
        assert back.metric == "engine/n48/fleet_s"
        assert back.deviation == 20.0

    def test_default_rules_include_perf_regression(self):
        from repro.obs.alerts import default_rules
        from repro.perf.regression import DEVIATION_THRESHOLD

        (rule,) = [r for r in default_rules() if r.name == "perf_regression"]
        assert rule.threshold == DEVIATION_THRESHOLD
        assert rule.direction == "above"

    def test_write_summary_stamps_provenance(self, tmp_path):
        from repro.obs import CampaignMonitor, write_summary

        path = tmp_path / "campaign_summary.json"
        write_summary(CampaignMonitor(), str(path))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert "meta" in data
        assert set(collect_meta()) <= set(data["meta"])
