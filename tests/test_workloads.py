"""Unit tests for workload profiles."""

import numpy as np
import pytest

from repro.datacenter.workloads import (
    PAPER_WORKLOADS,
    WorkloadProfile,
    standard_mix,
    workload_by_name,
)
from repro.errors import ConfigurationError
from repro.rng import spawn
from repro.units import hours


class TestCatalogue:
    def test_six_paper_applications(self):
        assert set(PAPER_WORKLOADS) == {
            "nutch_indexing",
            "kmeans_clustering",
            "word_count",
            "software_testing",
            "web_serving",
            "data_analytics",
        }

    def test_lookup(self):
        assert workload_by_name("web_serving").name == "web_serving"

    def test_unknown_lookup(self):
        with pytest.raises(ConfigurationError):
            workload_by_name("bitcoin_mining")

    def test_standard_mix_is_stable(self):
        assert [w.name for w in standard_mix()] == sorted(PAPER_WORKLOADS)

    def test_profiles_cover_table3_power_spread(self):
        """The mix must contain both 'Large' and 'Small' power classes
        so Table-3 classification is exercised."""
        utils = [w.mean_util for w in PAPER_WORKLOADS.values()]
        assert min(utils) < 0.45
        assert max(utils) > 0.6


class TestUtilization:
    def test_bounded(self):
        rng = spawn(1, "w")
        for profile in PAPER_WORKLOADS.values():
            for h in range(0, 48):
                u = profile.utilization_at(hours(h / 2.0), rng)
                assert 0.0 <= u <= 1.0

    def test_deterministic_without_rng(self):
        p = PAPER_WORKLOADS["web_serving"]
        assert p.utilization_at(hours(3)) == p.utilization_at(hours(3))

    def test_duty_cycle_produces_idle_gaps(self):
        batch = WorkloadProfile(
            name="batch", mean_util=0.5, burst_util=0.2, period_s=hours(1),
            burstiness=0.0, duty_cycle=0.5,
        )
        assert batch.utilization_at(hours(0.75)) == 0.0
        assert batch.utilization_at(hours(0.25)) > 0.0

    def test_mean_tracks_parameter(self):
        p = PAPER_WORKLOADS["data_analytics"]
        values = [p.utilization_at(i * 300.0) for i in range(288)]
        assert np.mean(values) == pytest.approx(
            p.mean_util + 0.5 * p.burst_util, abs=0.08
        )


class TestDemandEstimates:
    def test_mean_power_scales_with_envelope(self):
        p = PAPER_WORKLOADS["software_testing"]
        assert p.mean_power_w(60.0, 150.0) == pytest.approx(
            (p.mean_util + 0.5 * p.burst_util) * p.duty_cycle * 90.0
        )

    def test_energy_is_power_times_day(self):
        p = PAPER_WORKLOADS["web_serving"]
        assert p.energy_per_day_wh(60.0, 150.0) == pytest.approx(
            p.mean_power_w(60.0, 150.0) * 24.0
        )


class TestValidation:
    def test_rejects_util_above_one(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", mean_util=0.9, burst_util=0.2, period_s=60.0, burstiness=0.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", mean_util=0.5, burst_util=0.1, period_s=0.0, burstiness=0.0)

    def test_rejects_bad_duty_cycle(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(
                "x", mean_util=0.5, burst_util=0.1, period_s=60.0, burstiness=0.0,
                duty_cycle=0.0,
            )
