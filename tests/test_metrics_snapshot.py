"""Unit tests for the five aging metrics (Eqs. 1-5)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics.accumulator import MetricsAccumulator
from repro.metrics.snapshot import AgingMetrics
from repro.units import hours

LIFETIME_AH = 380.0 * 35.0
REF_I = 1.75


def metrics_from(*samples) -> AgingMetrics:
    """samples: (soc, current, dt_hours) tuples."""
    acc = MetricsAccumulator()
    for soc, current, dt_h in samples:
        acc.observe(soc, current, hours(dt_h), reference_current=REF_I)
    return AgingMetrics.from_accumulator(acc, LIFETIME_AH, REF_I)


class TestNAT:
    def test_eq1_definition(self):
        m = metrics_from((0.9, 7.0, 2.0))
        assert m.nat == pytest.approx(14.0 / LIFETIME_AH)

    def test_charging_does_not_count(self):
        m = metrics_from((0.9, -7.0, 2.0))
        assert m.nat == 0.0

    def test_whole_life_is_about_one(self):
        acc = MetricsAccumulator()
        acc.observe(0.7, REF_I, LIFETIME_AH / REF_I * 3600.0, reference_current=REF_I)
        m = AgingMetrics.from_accumulator(acc, LIFETIME_AH, REF_I)
        assert m.nat == pytest.approx(1.0)


class TestCF:
    def test_eq2_definition(self):
        m = metrics_from((0.9, 7.0, 2.0), (0.8, -7.0, 2.2))
        assert m.cf == pytest.approx(15.4 / 14.0)

    def test_healthy_band(self):
        """Normal cycling with charge losses lands CF in 1-1.3."""
        m = metrics_from((0.8, 5.0, 4.0), (0.6, -5.0, 4.4))
        assert 1.0 <= m.cf <= 1.3

    def test_infinite_when_only_charging(self):
        m = metrics_from((0.5, -5.0, 2.0))
        assert math.isinf(m.cf)

    def test_neutral_when_idle(self):
        m = metrics_from((0.5, 0.0, 2.0))
        assert m.cf == 1.0

    def test_cf_deficit_zero_when_healthy(self):
        m = metrics_from((0.8, 5.0, 2.0), (0.6, -5.0, 2.5))
        assert m.cf_deficit == 0.0

    def test_cf_deficit_positive_when_undercharged(self):
        m = metrics_from((0.8, 5.0, 4.0), (0.6, -5.0, 1.0))
        assert m.cf_deficit == pytest.approx(1.0 - 0.25)


class TestPC:
    def test_all_region_a_gives_quarter(self):
        m = metrics_from((0.9, 5.0, 2.0))
        assert m.pc == pytest.approx(0.25)

    def test_all_region_d_gives_one(self):
        m = metrics_from((0.2, 5.0, 2.0))
        assert m.pc == pytest.approx(1.0)

    def test_eq4_weighting(self):
        # Half the Ah in A (weight 1), half in C (weight 3) -> (0.5+1.5)/4.
        m = metrics_from((0.9, 5.0, 2.0), (0.5, 5.0, 2.0))
        assert m.pc == pytest.approx(0.5)

    def test_region_shares_sum_to_one(self):
        m = metrics_from((0.9, 5.0, 1.0), (0.7, 5.0, 1.0), (0.3, 5.0, 1.0))
        assert sum(m.region_shares.values()) == pytest.approx(1.0)

    def test_zero_without_discharge(self):
        m = metrics_from((0.9, 0.0, 2.0))
        assert m.pc == 0.0


class TestDDT:
    def test_eq5_definition(self):
        m = metrics_from((0.3, 0.0, 1.0), (0.8, 0.0, 3.0))
        assert m.ddt == pytest.approx(0.25)

    def test_time_based_not_throughput_based(self):
        """DDT counts time below 40 % regardless of current flow."""
        m = metrics_from((0.3, 0.0, 2.0), (0.3, 5.0, 2.0), (0.9, 9.0, 4.0))
        assert m.ddt == pytest.approx(0.5)


class TestDR:
    def test_mean_rate_normalised(self):
        m = metrics_from((0.9, 3.5, 2.0))
        assert m.dr_mean == pytest.approx(2.0)

    def test_peak_rate(self):
        m = metrics_from((0.9, 3.5, 1.0), (0.9, 7.0, 1.0))
        assert m.dr_peak == pytest.approx(4.0)

    def test_low_soc_exposure_fraction(self):
        m = metrics_from((0.3, 5.0, 1.0), (0.9, 5.0, 3.0))
        assert m.dr_low_soc_exposure == pytest.approx(0.25)


class TestValidation:
    def test_rejects_bad_lifetime(self):
        with pytest.raises(ConfigurationError):
            AgingMetrics.from_accumulator(MetricsAccumulator(), 0.0, REF_I)

    def test_rejects_bad_reference(self):
        with pytest.raises(ConfigurationError):
            AgingMetrics.from_accumulator(MetricsAccumulator(), LIFETIME_AH, 0.0)

    def test_as_dict_roundtrip(self):
        m = metrics_from((0.9, 5.0, 2.0))
        d = m.as_dict()
        assert d["nat"] == m.nat
        assert d["pc"] == m.pc
        assert "window_s" in d
