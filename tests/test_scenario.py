"""Unit tests for scenario assembly."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.scenario import Scenario


class TestValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            Scenario(n_nodes=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            Scenario(operating_window_h=(18.0, 8.0))

    def test_rejects_control_faster_than_dt(self):
        with pytest.raises(ConfigurationError):
            Scenario(dt_s=600.0, control_interval_s=300.0)

    def test_rejects_bad_initial_fade(self):
        with pytest.raises(ConfigurationError):
            Scenario(initial_fade=0.99)


class TestClusterAssembly:
    def test_default_is_six_nodes(self):
        cluster = Scenario().build_cluster()
        assert len(cluster) == 6

    def test_nodes_have_all_parts(self, tiny_scenario):
        cluster = tiny_scenario.build_cluster()
        for node in cluster:
            assert node.server is not None
            assert node.battery is not None
            assert node.tracker is not None

    def test_manufacturing_variation_spreads_capacity(self):
        cluster = Scenario(manufacturing_variation=True).build_cluster()
        factors = {n.battery.capacity_factor for n in cluster}
        assert len(factors) > 1

    def test_variation_disabled_gives_identical_units(self, tiny_scenario):
        cluster = tiny_scenario.build_cluster()
        assert {n.battery.capacity_factor for n in cluster} == {1.0}

    def test_variation_is_seed_deterministic(self):
        a = Scenario(seed=42).build_cluster()
        b = Scenario(seed=42).build_cluster()
        for na, nb in zip(a.nodes, b.nodes):
            assert na.battery.capacity_factor == nb.battery.capacity_factor

    def test_pre_aging(self):
        cluster = Scenario(initial_fade=0.12).build_cluster()
        for node in cluster:
            assert node.battery.capacity_fade == pytest.approx(0.12)
            assert node.battery.aging.state.discharged_ah > 0.0

    def test_initial_soc(self):
        cluster = Scenario(initial_soc=0.5, manufacturing_variation=False).build_cluster()
        assert all(n.battery.soc == 0.5 for n in cluster)


class TestVMsAndSolar:
    def test_default_vms_are_six_apps(self):
        vms = Scenario().build_vms()
        assert len(vms) == 6
        assert all(vm.host is None for vm in vms)

    def test_panel_hits_budget(self, tiny_scenario):
        panel = tiny_scenario.panel()
        assert panel.sunny_day_energy_wh() == pytest.approx(8000.0, rel=1e-3)

    def test_trace_generator_dt_matches(self, tiny_scenario):
        gen = tiny_scenario.trace_generator()
        assert gen.dt_s == tiny_scenario.dt_s


class TestRatioSweep:
    def test_with_ratio_scales_server(self):
        scenario = Scenario().with_server_to_battery_ratio(10.0)
        assert scenario.server.peak_w == pytest.approx(350.0)
        assert scenario.server_to_battery_ratio == pytest.approx(10.0)

    def test_default_ratio(self):
        assert Scenario().server_to_battery_ratio == pytest.approx(150.0 / 35.0)

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ConfigurationError):
            Scenario().with_server_to_battery_ratio(0.0)
