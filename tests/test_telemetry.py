"""Tests for the battery telemetry tiers (`repro.obs.telemetry`).

Covers the policy spec grammar, the columnar frame codec (quantization,
delta chains, roster handling), the sampled/summary tiers' emission
behavior on live runs, trace validation of the new `trace_meta` and
`battery_frame` kinds, and the bus/sink instrumentation counters.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.policies.factory import make_policy
from repro.errors import ConfigurationError
from repro.obs import (
    BUS,
    REGISTRY,
    TELEMETRY,
    FrameDecoder,
    FrameEncoder,
    JsonlSink,
    TelemetryPolicy,
    disable_observability,
    expand_frame,
    parse_telemetry,
    validate_trace,
)
from repro.obs.events import RunStartEvent
from repro.obs.telemetry import CUR_SCALE, SCHEMA_VERSION, SOC_SCALE
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass


@pytest.fixture(autouse=True)
def _clean_obs_state():
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    TELEMETRY.set_policy(TelemetryPolicy())
    yield
    disable_observability()
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()


STEPS_PER_DAY = int(86400 / 300)


def _traced_day(telemetry, n_nodes=4, stepper="fleet", day=DayClass.CLOUDY):
    """One traced day on a small cluster; returns the captured events."""
    TELEMETRY.set_policy(parse_telemetry(telemetry))
    scenario = Scenario(n_nodes=n_nodes, dt_s=300.0, stepper=stepper)
    trace = scenario.trace_generator().day(day)
    with BUS.capture(maxlen=None) as sink:
        sim = Simulation(scenario, make_policy("baat"), trace)
        sim.run()
        return sim, list(sink.events)


# ----------------------------------------------------------------------
# Policy spec grammar
# ----------------------------------------------------------------------
class TestParseTelemetry:
    @pytest.mark.parametrize(
        "spec, tier, frames, every, nodes, top_k",
        [
            ("full", "full", True, 1, None, 5),
            ("full-events", "full", False, 1, None, 5),
            ("events", "full", False, 1, None, 5),
            ("sampled:15", "sampled", True, 15, None, 5),
            ("sampled-events:3", "sampled", False, 3, None, 5),
            ("sampled:6:n1,n2", "sampled", True, 6, ("n1", "n2"), 5),
            ("summary", "summary", False, 1, None, 5),
            ("summary:12", "summary", False, 1, None, 12),
        ],
    )
    def test_good_specs(self, spec, tier, frames, every, nodes, top_k):
        policy = parse_telemetry(spec)
        assert policy.tier == tier
        assert policy.frames == frames
        assert policy.every == every
        assert policy.nodes == nodes
        assert policy.top_k == top_k

    @pytest.mark.parametrize(
        "spec",
        [
            "warp",
            "full:3",
            "events:2",
            "sampled",
            "sampled:zero",
            "sampled:0",
            "sampled:-2",
            "sampled:3: , ",
            "summary:none",
            "summary:0",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_telemetry(spec)

    @pytest.mark.parametrize(
        "spec",
        ["full", "full-events", "sampled:15", "sampled-events:3:n1,n2", "summary:7"],
    )
    def test_spec_round_trips(self, spec):
        assert parse_telemetry(spec).spec() == spec

    def test_default_policy_is_lossless_events(self):
        assert TelemetryPolicy().spec() == "full-events"


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_round_trip_within_quantum(self):
        names = ["a", "b", "c"]
        encoder = FrameEncoder(names)
        decoder = FrameDecoder()
        rows = [
            ([0.913, 0.5, 0.99999653], [1.25, -0.75, 0.0]),
            ([0.912, 0.501, 0.99999653], [1.3, -0.8, 2.5]),
            ([0.910, 0.502, 0.91], [0.0, 0.0, -3.75]),
        ]
        for step, (soc, cur) in enumerate(rows):
            frame = encoder.encode(300.0 * step, 300.0, soc, cur)
            assert frame.seq == step
            assert frame.nodes == (",".join(names) if step == 0 else "")
            decoded = decoder.decode(frame)
            assert [d[0] for d in decoded] == names
            for (_, got_soc, got_cur), want_soc, want_cur in zip(decoded, soc, cur):
                assert got_soc == pytest.approx(want_soc, abs=0.5 / SOC_SCALE)
                assert got_cur == pytest.approx(want_cur, abs=0.5 / CUR_SCALE)

    def test_quantized_values_round_trip_exactly(self):
        encoder = FrameEncoder(["a"])
        decoder = FrameDecoder()
        soc = 12345678 / SOC_SCALE  # representable exactly at the quantum
        cur = -4250000 / CUR_SCALE
        (_, got_soc, got_cur), = decoder.decode(
            encoder.encode(0.0, 300.0, [soc], [cur])
        )
        assert got_soc == soc
        assert got_cur == cur

    def test_roster_omitted_from_wire_after_first_frame(self):
        encoder = FrameEncoder(["a", "b"])
        first = encoder.encode(0.0, 300.0, [0.9, 0.8], [1.0, 2.0])
        second = encoder.encode(300.0, 300.0, [0.9, 0.8], [1.0, 2.0])
        assert "nodes" in first.to_dict()
        assert "nodes" not in second.to_dict()  # OMIT_EMPTY_FIELDS
        # Steady state deltas are all zero -> tiny wire form.
        assert second.to_dict()["soc"] == "0,0"

    def test_decode_before_roster_rejected(self):
        encoder = FrameEncoder(["a"])
        encoder.encode(0.0, 300.0, [0.9], [1.0])
        orphan = encoder.encode(300.0, 300.0, [0.9], [1.0])
        with pytest.raises(ConfigurationError):
            FrameDecoder().decode(orphan)

    def test_column_mismatch_rejected(self):
        encoder = FrameEncoder(["a", "b"])
        frame = encoder.encode(0.0, 300.0, [0.9, 0.8], [1.0, 2.0])
        bad = FrameEncoder(["a", "b", "c"]).encode(
            0.0, 300.0, [0.9, 0.8, 0.7], [1.0, 2.0, 3.0]
        )
        decoder = FrameDecoder()
        decoder.decode(frame)
        object.__setattr__(bad, "nodes", "")  # mid-run frame, wrong width
        with pytest.raises(ConfigurationError):
            decoder.decode(bad)

    def test_expand_frame_builds_sample_events(self):
        encoder = FrameEncoder(["a", "b"])
        decoder = FrameDecoder()
        frame = encoder.encode(600.0, 300.0, [0.9, 0.8], [1.5, -0.5])
        samples = expand_frame(decoder, frame)
        assert [s.kind for s in samples] == ["battery_sample"] * 2
        assert [(s.t, s.node, s.dt) for s in samples] == [
            (600.0, "a", 300.0),
            (600.0, "b", 300.0),
        ]
        assert samples[0].current_a == pytest.approx(1.5, abs=0.5 / CUR_SCALE)


# ----------------------------------------------------------------------
# Tier emission behavior on live runs
# ----------------------------------------------------------------------
class TestTierEmission:
    @pytest.mark.parametrize("stepper", ["reference", "fleet"])
    def test_full_frames_one_per_step(self, stepper):
        _, events = _traced_day("full", stepper=stepper)
        frames = [e for e in events if e.kind == "battery_frame"]
        assert len(frames) == STEPS_PER_DAY
        assert not any(e.kind == "battery_sample" for e in events)
        assert frames[0].nodes and frames[0].seq == 0
        assert [f.seq for f in frames] == list(range(STEPS_PER_DAY))

    @pytest.mark.parametrize("stepper", ["reference", "fleet"])
    def test_sampled_events_period_and_dt(self, stepper):
        every = 4
        _, events = _traced_day(f"sampled-events:{every}", stepper=stepper)
        samples = [e for e in events if e.kind == "battery_sample"]
        assert len(samples) == 4 * (STEPS_PER_DAY // every)
        # dt is stretched to the sampling window so integrals survive.
        assert all(s.dt == 300.0 * every for s in samples)

    def test_sampled_node_subset(self):
        _, events = _traced_day("sampled-events:2:node0,node2")
        samples = [e for e in events if e.kind == "battery_sample"]
        assert {s.node for s in samples} == {"node0", "node2"}

    @pytest.mark.parametrize("stepper", ["reference", "fleet"])
    def test_summary_one_event_per_step(self, stepper):
        sim, events = _traced_day("summary:3", stepper=stepper)
        summaries = [e for e in events if e.kind == "fleet_summary"]
        assert len(summaries) == STEPS_PER_DAY
        assert not any(
            e.kind in ("battery_sample", "battery_frame") for e in events
        )
        names = {n.name for n in sim.cluster}
        for s in summaries:
            assert s.n == 4
            assert 0.0 <= s.soc_min <= s.soc_p10 <= s.soc_mean <= s.soc_max <= 1.0
            top = [pair.split(":")[0] for pair in s.top.split(",") if pair]
            assert len(top) <= 3
            assert set(top) <= names

    def test_trace_meta_header_reflects_policy(self):
        _, events = _traced_day("sampled:6")
        meta = events[0]
        assert meta.kind == "trace_meta"
        assert meta.schema == SCHEMA_VERSION
        assert meta.telemetry == "sampled:6"
        assert meta.stepper == "fleet"
        assert meta.n_nodes == 4
        assert events[1].kind == "run_start"

    def test_frame_trace_smaller_than_event_trace(self):
        # The CI bench gates >= 10x at 1024 nodes; at 4 nodes the roster
        # amortizes far less, so just require a clear win.
        _, frame_events = _traced_day("full")
        _, sample_events = _traced_day("full-events")
        frame_bytes = sum(
            len(e.to_json()) for e in frame_events if e.kind == "battery_frame"
        )
        sample_bytes = sum(
            len(e.to_json()) for e in sample_events if e.kind == "battery_sample"
        )
        assert sample_bytes > 3 * frame_bytes


# ----------------------------------------------------------------------
# Trace validation of the new kinds
# ----------------------------------------------------------------------
class TestFrameValidation:
    def _write(self, tmp_path, lines):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        return str(path)

    META = {
        "kind": "trace_meta", "t": 0.0, "schema": SCHEMA_VERSION,
        "telemetry": "full", "stepper": "fleet", "n_nodes": 2,
    }
    RUN = {"kind": "run_start", "t": 0.0, "policy": "baat"}
    FRAME0 = {
        "kind": "battery_frame", "t": 300.0, "dt": 300.0, "n": 2,
        "seq": 0, "nodes": "a,b", "soc": "90000000,80000000",
        "cur": "1000000,-500000",
    }
    FRAME1 = {
        "kind": "battery_frame", "t": 600.0, "dt": 300.0, "n": 2,
        "seq": 1, "soc": "-1,2", "cur": "0,0",
    }

    def test_valid_frame_chain_passes(self, tmp_path):
        path = self._write(
            tmp_path, [self.META, self.RUN, self.FRAME0, self.FRAME1]
        )
        result = validate_trace(path)
        assert result.ok, [str(v) for v in result.violations]
        assert result.n_runs == 1

    def test_schema_mismatch_is_a_violation(self, tmp_path):
        meta = dict(self.META, schema=SCHEMA_VERSION + 1)
        path = self._write(tmp_path, [meta, self.RUN])
        result = validate_trace(path)
        assert any("schema" in v.message for v in result.violations)

    def test_frame_before_roster_is_a_violation(self, tmp_path):
        path = self._write(tmp_path, [self.META, self.RUN, self.FRAME1])
        result = validate_trace(path)
        assert any("roster" in v.message for v in result.violations)

    def test_seq_gap_is_a_violation(self, tmp_path):
        skipped = dict(self.FRAME1, seq=3, t=1200.0)
        path = self._write(tmp_path, [self.META, self.RUN, self.FRAME0, skipped])
        result = validate_trace(path)
        assert any("delta chain" in v.message for v in result.violations)

    def test_column_width_mismatch_is_a_violation(self, tmp_path):
        bad = dict(self.FRAME1, soc="-1,2,3")
        path = self._write(tmp_path, [self.META, self.RUN, self.FRAME0, bad])
        result = validate_trace(path)
        assert any("column" in v.message for v in result.violations)

    def test_run_start_resets_frame_state(self, tmp_path):
        # A second run must re-carry the roster; chains do not span runs.
        path = self._write(
            tmp_path,
            [self.META, self.RUN, self.FRAME0, self.FRAME1,
             self.RUN, self.FRAME1],
        )
        result = validate_trace(path)
        assert any("roster" in v.message for v in result.violations)


# ----------------------------------------------------------------------
# Bus and sink instrumentation
# ----------------------------------------------------------------------
class TestBusInstrumentation:
    def test_per_kind_counters(self):
        REGISTRY.enabled = True
        with BUS.capture():
            BUS.emit(RunStartEvent(t=0.0, policy="baat"))
            BUS.emit(RunStartEvent(t=0.0, policy="e-buff"))
        assert REGISTRY.counter("obs/events_total").value == 2
        assert REGISTRY.counter("obs/events/run_start").value == 2

    def test_sink_bytes_and_rotation_counters(self, tmp_path):
        REGISTRY.enabled = True
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, rotate_events=2)
        BUS.add_sink(sink)
        try:
            for i in range(5):
                BUS.emit(RunStartEvent(t=0.0, policy=f"p{i}"))
        finally:
            BUS.remove_sink(sink)
            sink.close()
        on_disk = sum(
            os.path.getsize(os.path.join(tmp_path, f))
            for f in os.listdir(tmp_path)
        )
        assert sink.bytes_written == on_disk > 0
        assert sink.segments_rotated == 2
        assert REGISTRY.counter("obs/sink_bytes").value == on_disk
        assert REGISTRY.counter("obs/segments_rotated").value == 2
