"""Tests for the metric exporters (`repro.obs.export`)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricRegistry
from repro.obs.events import DayStartEvent
from repro.obs.export import (
    PeriodicExportSink,
    parse_openmetrics,
    sanitize_metric_name,
    to_csv_snapshot,
    to_openmetrics,
    write_export,
)


@pytest.fixture
def registry() -> MetricRegistry:
    reg = MetricRegistry()
    reg.enabled = True
    reg.counter("engine/steps").inc(42.0)
    reg.gauge("planned/dod_goal/node0").set(0.55)
    hist = reg.histogram("phase/control")
    for v in (0.001, 0.002, 0.009):
        hist.observe(v)
    return reg


class TestNameSanitization:
    def test_dotted_and_slashed_names_map_to_charset(self):
        assert sanitize_metric_name("engine/steps") == "engine_steps"
        assert sanitize_metric_name("a.b-c d") == "a_b_c_d"

    def test_leading_digit_gets_underscore(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_valid_names_pass_through(self):
        assert sanitize_metric_name("already_valid:name") == "already_valid:name"


class TestOpenMetrics:
    def test_round_trip_preserves_exact_values(self, registry):
        parsed = parse_openmetrics(to_openmetrics(registry))
        assert parsed["counter"]["repro_engine_steps"] == 42.0
        assert parsed["gauge"]["repro_planned_dod_goal_node0"] == 0.55
        summary = parsed["summary"]["repro_phase_control"]
        # Three observations: quantiles are still the exact sorted-sample
        # interpolation (the P2 markers take over after five).
        assert summary == {
            "count": 3.0,
            "sum": pytest.approx(0.012),
            "min": 0.001,
            "max": 0.009,
            "p50": pytest.approx(0.002),
            "p95": pytest.approx(0.0083),
            "p99": pytest.approx(0.00886),
        }

    def test_terminates_with_eof(self, registry):
        text = to_openmetrics(registry)
        assert text.endswith("# EOF\n")

    def test_counter_total_suffix(self, registry):
        text = to_openmetrics(registry)
        assert "# TYPE repro_engine_steps counter" in text
        assert "repro_engine_steps_total 42.0" in text

    def test_custom_prefix(self, registry):
        parsed = parse_openmetrics(to_openmetrics(registry, prefix="baat"))
        assert "baat_engine_steps" in parsed["counter"]

    def test_empty_registry_is_valid(self):
        assert parse_openmetrics(to_openmetrics(MetricRegistry())) == {
            "counter": {},
            "gauge": {},
            "summary": {},
        }

    def test_untyped_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_openmetrics("mystery_metric 1.0\n# EOF\n")


class TestCsv:
    def test_rows_cover_all_metric_kinds(self, registry):
        lines = to_csv_snapshot(registry).splitlines()
        assert lines[0] == "metric,field,value"
        rows = {tuple(line.split(",")[:2]) for line in lines[1:]}
        assert ("engine/steps", "count") in rows
        assert ("planned/dod_goal/node0", "value") in rows
        for field in ("count", "total", "mean", "min", "max"):
            assert ("phase/control", field) in rows

    def test_values_repr_round_trip(self, registry):
        for line in to_csv_snapshot(registry).splitlines()[1:]:
            value = line.rsplit(",", 1)[1]
            float(value)  # every value cell parses back


class TestWriteExport:
    def test_writes_file_and_returns_text(self, registry, tmp_path):
        path = tmp_path / "metrics.prom"
        text = write_export(registry, str(path))
        assert path.read_text(encoding="utf-8") == text
        assert "# EOF" in text

    def test_csv_format_selectable(self, registry, tmp_path):
        path = tmp_path / "metrics.csv"
        write_export(registry, str(path), fmt="csv")
        assert path.read_text(encoding="utf-8").startswith("metric,field,value")

    def test_unknown_format_rejected(self, registry, tmp_path):
        with pytest.raises(ConfigurationError):
            write_export(registry, str(tmp_path / "x"), fmt="yaml")


class TestPeriodicExportSink:
    def test_rewrites_at_event_time_intervals(self, registry, tmp_path):
        path = tmp_path / "live.prom"
        sink = PeriodicExportSink(registry, str(path), interval_s=3600.0)
        sink.emit(DayStartEvent(t=0.0, day_index=0))  # arms the schedule
        assert sink.n_exports == 0 and not path.exists()
        sink.emit(DayStartEvent(t=3600.0, day_index=0))
        assert sink.n_exports == 1 and path.exists()
        # Idle gap: one rewrite, then the schedule catches up past it.
        sink.emit(DayStartEvent(t=4.5 * 3600.0, day_index=0))
        assert sink.n_exports == 2
        sink.emit(DayStartEvent(t=4.6 * 3600.0, day_index=0))
        assert sink.n_exports == 2  # next slot is now 5.5 h

    def test_close_writes_final_snapshot(self, registry, tmp_path):
        path = tmp_path / "final.prom"
        sink = PeriodicExportSink(registry, str(path), interval_s=3600.0)
        sink.close()
        assert sink.n_exports == 1
        assert parse_openmetrics(path.read_text(encoding="utf-8"))["counter"]

    def test_validates_configuration(self, registry, tmp_path):
        with pytest.raises(ConfigurationError):
            PeriodicExportSink(registry, str(tmp_path / "x"), interval_s=0.0)
        with pytest.raises(ConfigurationError):
            PeriodicExportSink(registry, str(tmp_path / "x"), fmt="yaml")
