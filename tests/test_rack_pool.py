"""Tests for the rack-shared battery architecture (paper Fig. 7)."""

from dataclasses import replace

import pytest

from repro.core.policies.factory import make_policy
from repro.datacenter.rack import RackPowerPath
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.vm import VM
from repro.datacenter.workloads import WorkloadProfile
from repro.errors import ConfigurationError
from repro.sim.engine import run_policy_on_trace
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass


def steady_vm(name, util):
    profile = WorkloadProfile(
        name=f"wl-{name}", mean_util=util, burst_util=0.0, period_s=3600.0,
        burstiness=0.0,
    )
    return VM(name=name, workload=profile)


def make_rack(n=3, initial_soc=1.0):
    from repro.battery.params import BatteryParams
    from repro.battery.unit import BatteryUnit

    nodes = []
    for i in range(n):
        battery = BatteryUnit(BatteryParams(), name=f"b{i}", initial_soc=initial_soc)
        nodes.append(Node.build(f"node{i}", battery=battery))
    cluster = Cluster(nodes)
    return cluster, RackPowerPath(cluster)


class TestRackRouting:
    def test_pool_bridges_aggregate_deficit(self):
        cluster, path = make_rack()
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}", 0.5), node.name)
        flows = path.step(0.0, 60.0, solar_w=0.0)
        assert flows.battery_to_load_w == pytest.approx(flows.demand_w, rel=0.02)
        assert flows.browned_out_nodes == 0

    def test_cycling_spread_across_members(self):
        """The defining property of the shared pool: one loaded server's
        draw shallow-cycles every battery instead of deep-cycling one."""
        cluster, path = make_rack()
        cluster.place(steady_vm("hungry", 0.9), "node0")
        for step in range(60):
            path.step(step * 60.0, 60.0, solar_w=0.0)
        socs = [n.battery.soc for n in cluster]
        assert max(socs) - min(socs) < 0.05
        assert all(s < 1.0 for s in socs)

    def test_surplus_charges_the_pool(self):
        cluster, path = make_rack(initial_soc=0.5)
        flows = path.step(0.0, 60.0, solar_w=2000.0)
        assert flows.solar_to_battery_w > 0.0

    def test_hungriest_loads_shed_first(self, params):
        cluster, path = make_rack(initial_soc=params.cutoff_soc)
        cluster.place(steady_vm("big", 0.9), "node0")
        cluster.place(steady_vm("small", 0.2), "node1")
        flows = path.step(0.0, 60.0, solar_w=0.0)
        assert flows.browned_out_nodes >= 1
        assert cluster.node("node0").server.state.value == "down"

    def test_caps_limit_the_pool(self):
        cluster, path = make_rack()
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}", 0.5), node.name)
            node.discharge_cap_w = 5.0
        flows = path.step(0.0, 60.0, solar_w=0.0)
        assert flows.battery_to_load_w <= 15.0 + 1e-6

    def test_batteries_advance_every_step(self):
        cluster, path = make_rack()
        path.step(0.0, 60.0, solar_w=500.0)
        path.step(60.0, 60.0, solar_w=0.0)
        for node in cluster:
            assert node.battery.time_s == pytest.approx(120.0)


class TestScenarioIntegration:
    def test_architecture_validation(self):
        with pytest.raises(ConfigurationError):
            Scenario(architecture="blockchain")

    def test_rack_scenario_runs_end_to_end(self, tiny_scenario):
        scenario = replace(tiny_scenario, architecture="rack-pool")
        trace = scenario.trace_generator().day(DayClass.CLOUDY)
        result = run_policy_on_trace(scenario, make_policy("e-buff"), trace)
        assert result.throughput > 0.0
        assert all(n.fade_added > 0.0 for n in result.nodes)

    def test_rack_reduces_aging_variation(self, tiny_scenario):
        """Table-1 trade-off: sharing a pool evens battery wear compared
        to per-server integration under identical weather."""
        trace = tiny_scenario.trace_generator().day(DayClass.CLOUDY)
        per_server = run_policy_on_trace(
            tiny_scenario, make_policy("e-buff"), trace
        )
        rack = run_policy_on_trace(
            replace(tiny_scenario, architecture="rack-pool"),
            make_policy("e-buff"),
            trace,
        )

        def spread(result):
            fades = [n.fade_added for n in result.nodes]
            return max(fades) - min(fades)

        assert spread(rack) <= spread(per_server) + 1e-9
