"""Shape tests for the executable Table 1."""

import pytest

from repro.experiments import table01_usage_scenarios


@pytest.fixture(scope="module")
def result():
    return table01_usage_scenarios.run(quick=True)


def test_three_usage_objectives(result):
    assert [row[0] for row in result.rows] == [
        "power backup",
        "demand response",
        "power smoothing",
    ]


def test_aging_speed_ordering(result):
    """Table 1: Light < Medium < Severe."""
    speeds = [row[1] for row in result.rows]
    assert speeds[0] < speeds[1] < speeds[2]


def test_aging_variation_ordering(result):
    """Table 1: Small < Medium < Large."""
    spreads = [row[3] for row in result.rows]
    assert spreads[0] < spreads[1] < spreads[2]


def test_backup_service_life_in_lead_acid_band(result):
    """A float-service battery should live 3-10 years (section IV-D)."""
    backup_years = result.rows[0][2]
    assert 3.0 < backup_years < 10.0


def test_smoothing_is_much_harsher_than_backup(result):
    assert result.headline["smoothing vs backup aging-speed ratio"] > 3.0
