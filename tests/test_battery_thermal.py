"""Unit tests for the thermal model and Arrhenius factor."""

import pytest

from repro.battery.thermal import ThermalModel, arrhenius_factor
from repro.units import hours


class TestThermalModel:
    def test_starts_at_ambient(self, params):
        model = ThermalModel(params, ambient_c=30.0)
        assert model.temperature_c == 30.0

    def test_no_load_stays_at_ambient(self, params):
        model = ThermalModel(params, ambient_c=25.0)
        model.step(0.0, 0.015, hours(5))
        assert model.temperature_c == pytest.approx(25.0)

    def test_heavy_load_heats_the_block(self, params):
        model = ThermalModel(params, ambient_c=25.0)
        model.step(35.0, 0.015, hours(24))
        assert model.temperature_c > 35.0

    def test_steady_state_matches_newton_cooling(self, params):
        model = ThermalModel(params, ambient_c=25.0)
        current, resistance = 20.0, 0.015
        model.step(current, resistance, hours(100))
        expected = 25.0 + current**2 * resistance * params.thermal_resistance_k_per_w
        assert model.temperature_c == pytest.approx(expected, rel=1e-3)

    def test_cools_back_after_load_removed(self, params):
        model = ThermalModel(params, ambient_c=25.0)
        model.step(35.0, 0.015, hours(24))
        hot = model.temperature_c
        model.step(0.0, 0.015, hours(24))
        assert model.temperature_c < hot
        assert model.temperature_c == pytest.approx(25.0, abs=0.5)

    def test_integration_is_stable_at_coarse_steps(self, params):
        """The exact exponential update must not overshoot even when dt
        far exceeds the thermal time constant."""
        model = ThermalModel(params, ambient_c=25.0)
        model.step(35.0, 0.015, hours(1000))
        expected = 25.0 + 35.0**2 * 0.015 * params.thermal_resistance_k_per_w
        assert model.temperature_c <= expected + 1e-6

    def test_reset(self, params):
        model = ThermalModel(params, ambient_c=25.0)
        model.step(35.0, 0.015, hours(10))
        model.reset(ambient_c=20.0)
        assert model.temperature_c == 20.0
        assert model.ambient_c == 20.0


class TestArrhenius:
    def test_unity_at_reference(self):
        assert arrhenius_factor(20.0) == pytest.approx(1.0)

    def test_doubles_per_ten_degrees(self):
        """The paper's 50 %-lifetime-per-10-degC rule."""
        assert arrhenius_factor(30.0) == pytest.approx(2.0)
        assert arrhenius_factor(40.0) == pytest.approx(4.0)

    def test_halves_below_reference(self):
        assert arrhenius_factor(10.0) == pytest.approx(0.5)
