"""Tests for intra-day metric curves (Fig. 12(e)-(k) plumbing)."""

import numpy as np
import pytest

from repro.analysis.timeseries import metric_curves
from repro.core.policies.factory import make_policy
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation
from repro.solar.weather import DayClass


@pytest.fixture(scope="module")
def recorded_sim():
    from repro.datacenter.workloads import PAPER_WORKLOADS
    from repro.sim.scenario import Scenario

    workloads = tuple(
        PAPER_WORKLOADS[name]
        for name in ("web_serving", "data_analytics", "word_count")
    )
    scenario = Scenario(
        n_nodes=3, dt_s=300.0, manufacturing_variation=False, workloads=workloads
    )
    trace = scenario.trace_generator().day(DayClass.CLOUDY)
    sim = Simulation(scenario, make_policy("e-buff"), trace, record_series=True)
    sim.run()
    return sim


class TestMetricCurves:
    def test_curves_cover_the_day(self, recorded_sim):
        curves = metric_curves(recorded_sim.recorder, "node0")
        assert curves.times_s[0] == 0.0
        assert curves.times_s[-1] == pytest.approx(86400.0 - 300.0)

    def test_nat_is_monotone_nondecreasing(self, recorded_sim):
        curves = metric_curves(recorded_sim.recorder, "node0")
        assert np.all(np.diff(curves.nat) >= -1e-15)

    def test_ddt_bounded(self, recorded_sim):
        curves = metric_curves(recorded_sim.recorder, "node0")
        assert np.all((curves.ddt >= 0.0) & (curves.ddt <= 1.0))

    def test_final_point_matches_tracker(self, recorded_sim):
        """The offline recomputation must agree with the online tracker."""
        curves = metric_curves(recorded_sim.recorder, "node0")
        node = recorded_sim.cluster.node("node0")
        online = node.tracker.lifetime()
        assert curves.nat[-1] == pytest.approx(online.nat, rel=0.05)
        assert curves.ddt[-1] == pytest.approx(online.ddt, abs=0.02)

    def test_at_hour_lookup(self, recorded_sim):
        curves = metric_curves(recorded_sim.recorder, "node0")
        nat_morning = curves.at_hour(9.0)[0]
        nat_evening = curves.at_hour(18.0)[0]
        assert nat_evening >= nat_morning

    def test_threshold_crossing(self, recorded_sim):
        curves = metric_curves(recorded_sim.recorder, "node0")
        final_nat = curves.nat[-1]
        crossing = curves.threshold_crossing_h(final_nat / 2.0)
        assert crossing is not None
        assert 0.0 < crossing < 24.0
        assert curves.threshold_crossing_h(final_nat * 10.0) is None

    def test_stride_thins_output(self, recorded_sim):
        dense = metric_curves(recorded_sim.recorder, "node0", stride=1)
        thin = metric_curves(recorded_sim.recorder, "node0", stride=10)
        assert len(thin.times_s) < len(dense.times_s)
        assert thin.nat[-1] == pytest.approx(dense.nat[-1])

    def test_unknown_node(self, recorded_sim):
        with pytest.raises(ConfigurationError):
            metric_curves(recorded_sim.recorder, "ghost")

    def test_requires_series(self, tiny_scenario, one_cloudy_day):
        sim = Simulation(
            tiny_scenario, make_policy("e-buff"), one_cloudy_day, record_series=False
        )
        sim.run()
        with pytest.raises(ConfigurationError):
            metric_curves(sim.recorder, "node0")
