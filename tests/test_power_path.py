"""Unit tests for per-step power routing."""

import math

import pytest

from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.power_path import RESTART_SOC, PowerPath
from repro.datacenter.vm import VM
from repro.datacenter.workloads import WorkloadProfile
from repro.battery.unit import BatteryUnit
from repro.battery.params import BatteryParams
from repro.datacenter.server import Server, ServerPowerState


def steady_vm(name, util):
    profile = WorkloadProfile(
        name=f"wl-{name}", mean_util=util, burst_util=0.0, period_s=3600.0,
        burstiness=0.0,
    )
    return VM(name=name, workload=profile, host=None)


def make_path(n=2, initial_soc=1.0, utility=0.0):
    nodes = []
    for i in range(n):
        battery = BatteryUnit(BatteryParams(), name=f"b{i}", initial_soc=initial_soc)
        nodes.append(Node.build(f"node{i}", battery=battery))
    cluster = Cluster(nodes)
    return cluster, PowerPath(cluster, utility_budget_w=utility)


class TestRouting:
    def test_abundant_solar_feeds_loads_and_charges(self):
        cluster, path = make_path(initial_soc=0.5)
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}", 0.5), node.name)
        flows = path.step(t=0.0, dt=60.0, solar_w=2000.0)
        assert flows.solar_to_load_w == pytest.approx(flows.demand_w)
        assert flows.solar_to_battery_w > 0.0
        assert flows.battery_to_load_w == 0.0
        assert flows.unserved_w == 0.0

    def test_deficit_bridged_by_batteries(self):
        cluster, path = make_path()
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}", 0.5), node.name)
        flows = path.step(t=0.0, dt=60.0, solar_w=50.0)
        assert flows.battery_to_load_w > 0.0
        assert flows.unserved_w == pytest.approx(0.0, abs=1.0)
        assert flows.browned_out_nodes == 0

    def test_grid_feedback_when_batteries_full(self):
        cluster, path = make_path(initial_soc=1.0)
        flows = path.step(t=0.0, dt=60.0, solar_w=2000.0)
        assert flows.grid_feedback_w > 0.0
        assert sum(n.feedback_wh for n in cluster) > 0.0

    def test_empty_batteries_cause_brownout(self, params):
        cluster, path = make_path(initial_soc=params.cutoff_soc)
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}", 0.5), node.name)
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert flows.browned_out_nodes == len(cluster)
        for node in cluster:
            assert node.server.state is ServerPowerState.DOWN

    def test_discharge_cap_respected(self):
        cluster, path = make_path()
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}", 0.5), node.name)
            node.discharge_cap_w = 10.0
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert flows.battery_to_load_w <= 10.0 * len(cluster) + 1e-6
        assert flows.browned_out_nodes == len(cluster)

    def test_utility_budget_bridges_deficit(self):
        cluster, path = make_path(utility=5000.0)
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}", 0.5), node.name)
            node.discharge_cap_w = 0.0
        flows = path.step(t=0.0, dt=60.0, solar_w=0.0)
        assert flows.utility_to_load_w == pytest.approx(flows.demand_w)
        assert flows.browned_out_nodes == 0


class TestRestartHysteresis:
    def test_cut_off_battery_blocks_restart(self, params):
        cluster, path = make_path(initial_soc=params.cutoff_soc + 0.02)
        node = cluster.nodes[0]
        node.server.brownout()
        # Battery below RESTART_SOC, little solar: must stay down.
        path.step(t=0.0, dt=60.0, solar_w=10.0)
        assert node.server.state is ServerPowerState.DOWN

    def test_recharged_battery_allows_restart(self):
        cluster, path = make_path(initial_soc=RESTART_SOC + 0.3)
        node = cluster.nodes[0]
        node.server.brownout()
        path.step(t=0.0, dt=60.0, solar_w=10.0)
        assert node.server.state is ServerPowerState.BOOTING

    def test_strong_solar_alone_allows_restart(self, params):
        cluster, path = make_path(initial_soc=params.cutoff_soc)
        node = cluster.nodes[0]
        node.server.brownout()
        path.step(t=0.0, dt=60.0, solar_w=5000.0)
        assert node.server.state is ServerPowerState.BOOTING

    def test_admin_off_server_never_restarts(self):
        cluster, path = make_path(initial_soc=1.0)
        node = cluster.nodes[0]
        node.server.brownout()
        node.server.admin_off = True
        path.step(t=0.0, dt=60.0, solar_w=5000.0)
        assert node.server.state is ServerPowerState.DOWN


class TestAccounting:
    def test_every_battery_advances_every_step(self):
        cluster, path = make_path()
        path.step(t=0.0, dt=60.0, solar_w=0.0)
        path.step(t=60.0, dt=60.0, solar_w=500.0)
        for node in cluster:
            assert node.battery.time_s == pytest.approx(120.0)

    def test_sensor_observation_happens(self):
        cluster, path = make_path()
        path.step(t=0.0, dt=60.0, solar_w=500.0)
        for node in cluster:
            assert node.tracker.lifetime().window_s == pytest.approx(60.0)

    def test_flow_balance(self):
        """Solar used never exceeds available; load never over-served."""
        cluster, path = make_path(initial_soc=0.7)
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}", 0.6), node.name)
        flows = path.step(t=0.0, dt=60.0, solar_w=300.0)
        assert flows.solar_to_load_w + flows.solar_to_battery_w + flows.grid_feedback_w \
            == pytest.approx(flows.solar_available_w, rel=1e-6)
        served = flows.solar_to_load_w + flows.battery_to_load_w + flows.utility_to_load_w
        assert served <= flows.demand_w + 1e-6
