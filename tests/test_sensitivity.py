"""Robustness tests: the headline conclusion survives recalibration."""

import pytest

from repro.experiments import sensitivity


@pytest.fixture(scope="module")
def result():
    return sensitivity.run(quick=True)


def test_all_variants_run(result):
    assert [row[0] for row in result.rows] == list(sensitivity.VARIANTS)


def test_baat_wins_under_every_perturbation(result):
    for row in result.rows:
        assert row[3] > 10.0, f"BAAT advantage collapsed under {row[0]}"


def test_harsher_sulphation_amplifies_the_advantage(result):
    by_variant = {row[0]: row[3] for row in result.rows}
    assert by_variant["sulphation x2"] > by_variant["sulphation x0.5"]


def test_flat_soc_weights_shrink_but_keep_the_advantage(result):
    by_variant = {row[0]: row[3] for row in result.rows}
    assert by_variant["soc-weights flat"] < by_variant["sulphation x2"]
    assert by_variant["soc-weights flat"] > 10.0
