"""Unit tests for the slowdown monitor (Fig. 9)."""

import math

import pytest

from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryUnit
from repro.core.controller import BAATController
from repro.core.scheduler import AgingHidingScheduler
from repro.core.slowdown import (
    SlowdownConfig,
    SlowdownMonitor,
    reserve_seconds,
    two_minute_safe_power,
)
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.vm import VM
from repro.datacenter.workloads import WorkloadProfile
from repro.errors import ConfigurationError
from repro.units import hours


def make_monitor(n=3, prefer_migration=True, allow_parking=True, socs=None):
    nodes = []
    for i in range(n):
        soc = socs[i] if socs else 1.0
        battery = BatteryUnit(BatteryParams(), name=f"b{i}", initial_soc=soc)
        nodes.append(Node.build(f"node{i}", battery=battery))
    cluster = Cluster(nodes)
    controller = BAATController(cluster)
    scheduler = AgingHidingScheduler(cluster, controller)
    config = SlowdownConfig(
        prefer_migration=prefer_migration, allow_parking=allow_parking
    )
    return cluster, SlowdownMonitor(cluster, controller, scheduler, config)


def steady_vm(name, util=0.5):
    profile = WorkloadProfile(
        name=f"wl-{name}", mean_util=util, burst_util=0.0, period_s=3600.0,
        burstiness=0.0,
    )
    return VM(name=name, workload=profile)


class TestReserveHelpers:
    def test_reserve_infinite_at_zero_draw(self, battery):
        assert reserve_seconds(battery, 0.0) == math.inf

    def test_reserve_shrinks_with_power(self, battery):
        assert reserve_seconds(battery, 400.0) < reserve_seconds(battery, 100.0)

    def test_reserve_zero_at_cutoff(self, params):
        empty = BatteryUnit(params, initial_soc=params.cutoff_soc)
        assert reserve_seconds(empty, 100.0) == 0.0

    def test_two_minute_power_scales_with_charge(self, params):
        full = BatteryUnit(params, initial_soc=1.0)
        half = BatteryUnit(params, initial_soc=0.5)
        assert two_minute_safe_power(full) > two_minute_safe_power(half)

    def test_two_minute_power_definition(self, battery):
        """Draining at exactly the safe power empties in ~the window."""
        p = two_minute_safe_power(battery, 120.0)
        assert reserve_seconds(battery, p) == pytest.approx(120.0, rel=0.2)

    def test_rejects_bad_threshold(self, battery):
        with pytest.raises(ConfigurationError):
            two_minute_safe_power(battery, 0.0)


class TestConfig:
    def test_recovery_above_threshold_enforced(self):
        with pytest.raises(ConfigurationError):
            SlowdownConfig(low_soc_threshold=0.5, recovery_soc=0.4)

    def test_protected_below_threshold_enforced(self):
        with pytest.raises(ConfigurationError):
            SlowdownConfig(low_soc_threshold=0.3, protected_soc=0.35)


class TestTrigger:
    def test_no_trigger_above_threshold(self):
        cluster, monitor = make_monitor(socs=[0.8, 0.8, 0.8])
        assert not monitor.check(cluster.nodes[0], current_draw_w=100.0)

    def test_triggers_on_thin_reserve(self):
        cluster, monitor = make_monitor(socs=[0.15, 0.8, 0.8])
        node = cluster.nodes[0]
        # A draw large enough to empty the remaining charge in < 2 min.
        assert monitor.check(node, current_draw_w=5000.0)

    def test_triggers_on_unsustainable_ration(self):
        cluster, monitor = make_monitor(socs=[0.35, 0.8, 0.8])
        node = cluster.nodes[0]
        monitor._last_t = hours(17.0)  # late in the window
        assert monitor.check(node, current_draw_w=150.0)

    def test_planned_override_moves_threshold(self):
        cluster, monitor = make_monitor(socs=[0.35, 0.8, 0.8])
        node = cluster.nodes[0]
        monitor.low_soc_override[node.name] = 0.2
        assert not monitor.check(node, current_draw_w=150.0)


class TestActions:
    def test_migration_preferred_to_healthier_node(self):
        cluster, monitor = make_monitor(socs=[0.3, 0.9, 0.9])
        vm = steady_vm("a")
        cluster.place(vm, "node0")
        action = monitor.act(cluster.nodes[0], t=hours(12))
        assert action == "migrated"
        assert vm.host in ("node1", "node2")
        assert monitor.migrations == 1

    def test_migration_skipped_without_soc_margin(self):
        """Equal-stress nodes: migration is pointless churn; throttle."""
        cluster, monitor = make_monitor(socs=[0.3, 0.32, 0.31])
        vm = steady_vm("a")
        cluster.place(vm, "node0")
        action = monitor.act(cluster.nodes[0], t=hours(12))
        assert action == "throttled"
        assert vm.host == "node0"

    def test_dvfs_fallback_without_scheduler(self):
        cluster, monitor = make_monitor(prefer_migration=False, socs=[0.3, 0.9, 0.9])
        cluster.place(steady_vm("a"), "node0")
        action = monitor.act(cluster.nodes[0], t=hours(12))
        assert action == "throttled"
        assert cluster.nodes[0].server.frequency < 1.0

    def test_park_when_ladder_exhausted_and_idle_unsustainable(self):
        cluster, monitor = make_monitor(socs=[0.30, 0.31, 0.30])
        node = cluster.nodes[0]
        node.server.set_freq_index(len(node.server.params.freq_levels) - 1)
        action = monitor.act(node, t=hours(17.5))
        assert action == "parked"
        assert node.server.policy_off
        assert node.discharge_cap_w == 0.0

    def test_no_parking_for_dvfs_only_monitor(self):
        cluster, monitor = make_monitor(allow_parking=False, socs=[0.3, 0.3, 0.3])
        node = cluster.nodes[0]
        node.server.set_freq_index(len(node.server.params.freq_levels) - 1)
        action = monitor.act(node, t=hours(17.5))
        assert action == "capped"
        assert not node.server.policy_off
        # The idle-floor keeps the server eating.
        assert node.discharge_cap_w >= node.server.params.idle_w

    def test_recover_releases_throttle_gradually(self):
        cluster, monitor = make_monitor(socs=[0.8, 0.8, 0.8])
        node = cluster.nodes[0]
        node.server.set_freq_index(2)
        node.discharge_cap_w = 50.0
        monitor.recover(node)
        assert node.server.freq_index == 1
        assert node.discharge_cap_w == math.inf
        monitor.recover(node)
        assert node.server.freq_index == 0

    def test_recover_does_not_wake_parked(self):
        cluster, monitor = make_monitor(socs=[0.9, 0.9, 0.9])
        node = cluster.nodes[0]
        node.server.policy_off = True
        monitor.recover(node)
        assert node.server.policy_off


class TestControlLoop:
    def test_control_acts_only_on_triggered_nodes(self):
        cluster, monitor = make_monitor(socs=[0.2, 0.9, 0.9])
        for node in cluster:
            cluster.place(steady_vm(f"vm-{node.name}"), node.name)
        actions = monitor.control(hours(12), {n.name: 120.0 for n in cluster})
        assert len(actions) == 1
        assert actions[0].startswith("node0:")

    def test_control_recovers_healthy_nodes(self):
        cluster, monitor = make_monitor(socs=[0.9, 0.9, 0.9])
        node = cluster.nodes[0]
        node.server.set_freq_index(1)
        monitor.control(hours(12), {n.name: 0.0 for n in cluster})
        assert node.server.freq_index == 0
