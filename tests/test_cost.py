"""Unit tests for the cost models (depreciation, TCO, expansion)."""

import pytest

from repro.battery.params import BatteryParams
from repro.cost.depreciation import DepreciationModel, annual_depreciation_usd
from repro.cost.expansion import ExpansionModel, expansion_at_constant_tco
from repro.cost.tco import TCOModel
from repro.errors import ConfigurationError


class TestDepreciation:
    def test_straight_line(self):
        # A $73 battery lasting one year costs $73/year.
        assert annual_depreciation_usd(73.0, 365.0) == pytest.approx(73.0)

    def test_longer_life_costs_less(self):
        assert annual_depreciation_usd(73.0, 730.0) == pytest.approx(36.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            annual_depreciation_usd(-1.0, 365.0)
        with pytest.raises(ConfigurationError):
            annual_depreciation_usd(73.0, 0.0)

    def test_fleet_cost(self):
        model = DepreciationModel(BatteryParams(), n_batteries=6)
        single = annual_depreciation_usd(model.unit_cost_usd, 365.0)
        assert model.annual_cost_usd(365.0) == pytest.approx(6 * single)

    def test_saving_vs_baseline(self):
        model = DepreciationModel(BatteryParams(), n_batteries=6)
        saving = model.saving_vs(lifetime_days=730.0, baseline_lifetime_days=365.0)
        assert saving == pytest.approx(model.annual_cost_usd(365.0) / 2.0)

    def test_paper_26_percent_example(self):
        """A 1.35x lifetime extension yields ~26 % lower depreciation."""
        model = DepreciationModel(BatteryParams(), n_batteries=6)
        base = model.annual_cost_usd(365.0)
        improved = model.annual_cost_usd(365.0 * 1.35)
        assert (1.0 - improved / base) * 100.0 == pytest.approx(26.0, abs=0.5)


class TestTCO:
    @pytest.fixture
    def tco(self):
        return TCOModel(DepreciationModel(BatteryParams(), n_batteries=6))

    def test_breakdown_totals(self, tco):
        cost = tco.annual(n_servers=6, battery_lifetime_days=365.0,
                          grid_kwh_per_year=100.0)
        assert cost.total_usd == pytest.approx(
            cost.servers_usd + cost.batteries_usd + cost.energy_usd
        )
        assert cost.servers_usd == pytest.approx(6 * 500.0)
        assert cost.energy_usd == pytest.approx(10.0)

    def test_battery_life_lowers_total(self, tco):
        short = tco.annual(6, 365.0).total_usd
        long = tco.annual(6, 1095.0).total_usd
        assert long < short

    def test_validation(self, tco):
        with pytest.raises(ConfigurationError):
            tco.annual(0, 365.0)


class TestExpansion:
    def _model(self, gain=1.6, headroom=0.2):
        tco = TCOModel(DepreciationModel(BatteryParams(), n_batteries=6))
        base_life = 200.0
        baat_life = base_life * gain

        def lifetime_of_ratio(ratio):
            # Lifetime falls with load, anchored at the baseline ratio.
            return baat_life * (4.3 / ratio) ** 0.5

        return ExpansionModel(
            tco=tco,
            baseline_servers=6,
            lifetime_of_ratio=lifetime_of_ratio,
            baseline_lifetime_days=base_life,
            baseline_ratio_w_per_ah=4.3,
            solar_headroom_fraction=headroom,
        )

    def test_positive_expansion_from_battery_savings(self):
        expansion = expansion_at_constant_tco(self._model())
        assert expansion > 0.0

    def test_capped_by_solar_headroom(self):
        capped = expansion_at_constant_tco(self._model(headroom=0.01))
        assert capped <= 0.01 + 1e-9

    def test_larger_lifetime_gain_buys_more_servers(self):
        small = expansion_at_constant_tco(self._model(gain=1.2))
        large = expansion_at_constant_tco(self._model(gain=2.0))
        assert large >= small

    def test_no_gain_no_expansion(self):
        expansion = expansion_at_constant_tco(self._model(gain=1.0))
        assert expansion == pytest.approx(0.0, abs=0.02)

    def test_validation(self):
        tco = TCOModel(DepreciationModel(BatteryParams()))
        with pytest.raises(ConfigurationError):
            ExpansionModel(
                tco=tco,
                baseline_servers=0,
                lifetime_of_ratio=lambda r: 100.0,
                baseline_lifetime_days=100.0,
                baseline_ratio_w_per_ah=4.3,
                solar_headroom_fraction=0.1,
            )
