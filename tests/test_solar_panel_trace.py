"""Unit tests for the PV panel and trace generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.solar.panel import PVPanel
from repro.solar.trace import SolarTrace, SolarTraceGenerator
from repro.solar.weather import DayClass
from repro.units import SECONDS_PER_DAY, hours


class TestPanel:
    def test_sizing_hits_energy_budget(self):
        panel = PVPanel.sized_for_daily_energy(8.0)
        assert panel.sunny_day_energy_wh() == pytest.approx(8000.0, rel=1e-3)

    def test_power_zero_at_night(self):
        panel = PVPanel.sized_for_daily_energy(8.0)
        assert panel.power(hours(1)) == 0.0

    def test_attenuation_scales_output(self):
        panel = PVPanel.sized_for_daily_energy(8.0)
        noon = hours(12.75)
        assert panel.power(noon, 0.5) == pytest.approx(0.5 * panel.power(noon, 1.0))

    def test_rejects_negative_attenuation(self):
        panel = PVPanel.sized_for_daily_energy(8.0)
        with pytest.raises(ConfigurationError):
            panel.power(hours(12), -0.1)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            PVPanel.sized_for_daily_energy(0.0)


@pytest.fixture
def generator():
    return SolarTraceGenerator(PVPanel.sized_for_daily_energy(8.0), seed=7, dt_s=300.0)


class TestTraceGenerator:
    def test_day_length(self, generator):
        trace = generator.day(DayClass.SUNNY)
        assert trace.duration_s == pytest.approx(SECONDS_PER_DAY)
        assert trace.n_days == 1

    def test_paper_energy_budgets(self, generator):
        """Sunny ~8 kWh, cloudy ~6 kWh, rainy ~3 kWh (section VI-A).

        Single days are stochastic; assert the class ordering and broad
        magnitudes."""
        sunny = generator.day(DayClass.SUNNY).energy_wh()
        cloudy = generator.day(DayClass.CLOUDY).energy_wh()
        rainy = generator.day(DayClass.RAINY).energy_wh()
        assert sunny > cloudy > rainy
        assert 6500 < sunny < 8500
        assert 4000 < cloudy < 7500
        assert 1200 < rainy < 4500

    def test_deterministic(self, generator):
        a = generator.day(DayClass.CLOUDY)
        b = generator.day(DayClass.CLOUDY)
        assert np.array_equal(a.power_w, b.power_w)

    def test_different_days_differ(self, generator):
        trace = generator.days([DayClass.CLOUDY, DayClass.CLOUDY])
        day_energy = trace.daily_energy_wh()
        assert len(day_energy) == 2
        assert day_energy[0] != pytest.approx(day_energy[1], rel=1e-6)

    def test_season_day_count(self, generator):
        trace = generator.season(5, sunshine_fraction=0.5)
        assert trace.n_days == 5
        assert len(trace.day_classes) == 5

    def test_season_rejects_both_weather_args(self, generator):
        from repro.solar.weather import WeatherModel

        with pytest.raises(ConfigurationError):
            generator.season(3, weather=WeatherModel(0.5), sunshine_fraction=0.5)

    def test_empty_day_list_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            generator.days([])


class TestSolarTrace:
    def test_power_at(self, generator):
        trace = generator.day(DayClass.SUNNY)
        assert trace.power_at(hours(12.75)) > 0.0
        assert trace.power_at(0.0) == 0.0

    def test_power_at_out_of_range(self, generator):
        trace = generator.day(DayClass.SUNNY)
        with pytest.raises(TraceError):
            trace.power_at(trace.duration_s + 1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(TraceError):
            SolarTrace(dt_s=60.0, power_w=np.array([-1.0]), day_classes=(DayClass.SUNNY,))

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            SolarTrace(dt_s=60.0, power_w=np.array([]), day_classes=())
