"""Unit tests for the stateful battery unit."""

import pytest

from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryUnit
from repro.errors import BatteryCutoffError, ConfigurationError
from repro.units import hours


class TestConstruction:
    def test_defaults(self, battery):
        assert battery.soc == 1.0
        assert battery.capacity_fade == 0.0
        assert battery.effective_capacity_ah == pytest.approx(35.0)

    def test_rejects_bad_initial_soc(self, params):
        with pytest.raises(ConfigurationError):
            BatteryUnit(params, initial_soc=1.5)

    def test_capacity_factor_scales_capacity(self, params):
        weak = BatteryUnit(params, capacity_factor=0.95)
        assert weak.effective_capacity_ah == pytest.approx(0.95 * 35.0)

    def test_rejects_nonpositive_capacity_factor(self, params):
        with pytest.raises(ConfigurationError):
            BatteryUnit(params, capacity_factor=0.0)


class TestDischarge:
    def test_delivers_requested_power(self, battery):
        result = battery.discharge(100.0, 60.0)
        assert result.delivered_power_w == pytest.approx(100.0, rel=0.01)
        assert not result.curtailed
        assert result.current_a > 0.0

    def test_soc_drops(self, battery):
        battery.discharge(100.0, hours(1))
        assert battery.soc < 1.0

    def test_energy_accounting(self, battery):
        battery.discharge(120.0, hours(2))
        assert battery.energy_out_wh == pytest.approx(240.0, rel=0.02)

    def test_peukert_drains_more_at_high_rate(self, params):
        gentle = BatteryUnit(params)
        harsh = BatteryUnit(params)
        # Same energy, different rates.
        for _ in range(8):
            gentle.discharge(25.0, hours(1))
        for _ in range(2):
            harsh.discharge(100.0, hours(1))
        assert harsh.soc < gentle.soc

    def test_curtails_at_cutoff_soc(self, params):
        battery = BatteryUnit(params, initial_soc=params.cutoff_soc)
        result = battery.discharge(100.0, 60.0)
        assert result.curtailed
        assert result.delivered_power_w == 0.0

    def test_strict_raises_at_cutoff(self, params):
        battery = BatteryUnit(params, initial_soc=params.cutoff_soc)
        with pytest.raises(BatteryCutoffError):
            battery.discharge(100.0, 60.0, strict=True)

    def test_cannot_drain_below_cutoff(self, battery, params):
        """Discharge stops at the cut-off floor; only rest-time
        self-discharge can leak marginally below it afterwards."""
        for _ in range(100):
            battery.discharge(200.0, hours(1))
        leak_allowance = params.cutoff_soc * 0.01
        assert battery.soc >= params.cutoff_soc - leak_allowance

    def test_zero_power_is_rest(self, battery):
        result = battery.discharge(0.0, 60.0)
        assert result.delivered_power_w == 0.0
        assert battery.soc == pytest.approx(1.0, abs=1e-5)  # bar self-discharge

    def test_rejects_negative_power(self, battery):
        with pytest.raises(ConfigurationError):
            battery.discharge(-5.0, 60.0)

    def test_rejects_nonpositive_dt(self, battery):
        with pytest.raises(ConfigurationError):
            battery.discharge(10.0, 0.0)


class TestCharge:
    def test_soc_rises(self, params):
        battery = BatteryUnit(params, initial_soc=0.5)
        battery.charge(60.0, hours(1))
        assert battery.soc > 0.5

    def test_acceptance_limited(self, params):
        battery = BatteryUnit(params, initial_soc=0.5)
        result = battery.charge(10_000.0, 60.0)
        assert result.curtailed
        # Bulk limit is C/5 = 7 A.
        assert abs(result.current_a) <= battery.charger.max_current + 1e-6

    def test_full_battery_accepts_nothing(self, battery):
        before_in = battery.energy_in_wh
        result = battery.charge(100.0, 60.0)
        assert result.delivered_power_w == 0.0
        assert battery.energy_in_wh == before_in

    def test_gassing_current_reported(self, params):
        battery = BatteryUnit(params, initial_soc=0.5)
        result = battery.charge(60.0, 60.0)
        assert result.gassing_current_a > 0.0

    def test_full_charge_resets_staleness(self, params):
        battery = BatteryUnit(params, initial_soc=0.9)
        assert battery.hours_since_full_charge > 0.0
        for _ in range(40):
            battery.charge(50.0, hours(1))
        assert battery.soc >= 0.99
        assert battery.hours_since_full_charge == 0.0

    def test_round_trip_efficiency_below_one(self, params):
        battery = BatteryUnit(params, initial_soc=1.0)
        battery.discharge(60.0, hours(3))
        for _ in range(10):
            battery.charge(50.0, hours(1))
        eta = battery.round_trip_efficiency()
        assert 0.5 < eta < 1.0


class TestRestAndAging:
    def test_rest_advances_time(self, battery):
        battery.rest(hours(5))
        assert battery.time_s == pytest.approx(hours(5))

    def test_rest_accrues_calendar_aging(self, battery):
        battery.rest(hours(24 * 30))
        assert battery.capacity_fade > 0.0

    def test_cycling_ages_faster_than_rest(self, params):
        rester = BatteryUnit(params)
        cycler = BatteryUnit(params)
        rester.rest(hours(48))
        for _ in range(2):
            cycler.discharge(100.0, hours(12))
            cycler.charge(60.0, hours(12))
        assert cycler.capacity_fade > rester.capacity_fade

    def test_aging_reduces_max_power(self, params):
        fresh = BatteryUnit(params)
        aged = BatteryUnit(params)
        aged.aging.state.damage["active_mass"] = 0.15
        aged.aging.state.damage["corrosion"] = 0.03
        assert aged.max_discharge_power() < fresh.max_discharge_power()


class TestSample:
    def test_sample_fields(self, battery):
        battery.discharge(100.0, 60.0)
        state = battery.sample()
        assert state.name == "test-battery"
        assert state.current_a > 0.0
        assert 0.0 <= state.soc <= 1.0
        assert state.terminal_voltage_v > 0.0
        assert state.temperature_c > 0.0
        assert not state.is_end_of_life


class TestLastCurrentProperty:
    """Regression: the engine used to reach into ``_last_current``."""

    def test_zero_before_any_step(self, battery):
        assert battery.last_current_a == 0.0

    def test_positive_during_discharge(self, battery):
        battery.discharge(100.0, 60.0)
        assert battery.last_current_a > 0.0
        assert battery.last_current_a == battery._last_current

    def test_negative_during_charge(self, params):
        unit = BatteryUnit(params=params, initial_soc=0.5, name="charging")
        unit.charge(100.0, 60.0)
        assert unit.last_current_a < 0.0
        assert unit.last_current_a == unit._last_current

    def test_reset_to_zero_at_rest(self, battery):
        battery.discharge(100.0, 60.0)
        battery.rest(60.0)
        assert battery.last_current_a == 0.0
