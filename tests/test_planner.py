"""Unit tests for planned aging (Eq. 7)."""

import pytest

from repro.core.planner import DOD_MAX, DOD_MIN, PlannedAgingManager, dod_goal
from repro.errors import ConfigurationError
from repro.units import days


class TestEq7:
    def test_basic_definition(self):
        # 13 300 Ah life, nothing used, 1000 cycles planned on a 35 Ah
        # block: (13300 - 0) / 1000 / 35 = 0.38.
        assert dod_goal(13_300.0, 0.0, 1000.0, 35.0) == pytest.approx(0.38)

    def test_used_throughput_reduces_goal(self):
        fresh = dod_goal(13_300.0, 0.0, 1000.0, 35.0)
        used = dod_goal(13_300.0, 5000.0, 1000.0, 35.0)
        assert used < fresh

    def test_fewer_planned_cycles_deepens_goal(self):
        few = dod_goal(13_300.0, 0.0, 500.0, 35.0)
        many = dod_goal(13_300.0, 0.0, 2000.0, 35.0)
        assert few > many

    def test_clamped_to_practical_band(self):
        assert dod_goal(13_300.0, 0.0, 10.0, 35.0) == DOD_MAX
        assert dod_goal(13_300.0, 13_200.0, 5000.0, 35.0) == DOD_MIN

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dod_goal(0.0, 0.0, 100.0, 35.0)
        with pytest.raises(ConfigurationError):
            dod_goal(100.0, -1.0, 100.0, 35.0)
        with pytest.raises(ConfigurationError):
            dod_goal(100.0, 0.0, 0.0, 35.0)
        with pytest.raises(ConfigurationError):
            dod_goal(100.0, 0.0, 100.0, 0.0)


class TestManager:
    def test_remaining_cycles_shrink_with_time(self):
        manager = PlannedAgingManager(service_life_days=365.0)
        assert manager.remaining_cycles(0.0) == pytest.approx(365.0)
        assert manager.remaining_cycles(days(100)) == pytest.approx(265.0)

    def test_remaining_cycles_floor_at_one(self):
        manager = PlannedAgingManager(service_life_days=10.0)
        assert manager.remaining_cycles(days(100)) == 1.0

    def test_short_horizon_allows_deep_dod(self, battery):
        eager = PlannedAgingManager(service_life_days=200.0)
        patient = PlannedAgingManager(service_life_days=3000.0)
        assert eager.current_dod_goal(battery) > patient.current_dod_goal(battery)

    def test_low_soc_threshold_is_complement(self, battery):
        manager = PlannedAgingManager(service_life_days=730.0)
        goal = manager.current_dod_goal(battery)
        assert manager.low_soc_threshold(battery) == pytest.approx(1.0 - goal)

    def test_goal_deepens_as_discard_date_approaches(self, battery):
        """Shifting unused life into the used portion: with the clock
        running and little throughput consumed, the per-cycle allowance
        grows."""
        manager = PlannedAgingManager(service_life_days=1500.0)
        goal_early = manager.current_dod_goal(battery)
        battery.rest(days(1000))
        goal_late = manager.current_dod_goal(battery)
        assert goal_late > goal_early

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlannedAgingManager(service_life_days=0.0)
        with pytest.raises(ConfigurationError):
            PlannedAgingManager(service_life_days=100.0, cycles_per_day=0.0)
