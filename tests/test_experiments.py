"""Smoke + shape tests for the figure experiments.

These run the cheap experiments end-to-end and assert the *direction* of
each paper claim (who wins, which way a sweep bends) without pinning
fragile absolute numbers.
"""

import pytest

from repro.experiments import fig03_voltage, fig04_capacity, fig05_efficiency
from repro.experiments import fig10_cycle_life
from repro.experiments.base import ExperimentResult
from repro.errors import ConfigurationError


class TestResultContainer:
    def test_requires_identity(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult(exp_id="", title="x", headers=("a",), rows=[])

    def test_to_text_contains_everything(self):
        result = ExperimentResult(
            exp_id="figX",
            title="demo",
            headers=("k", "v"),
            rows=[("a", 1.0)],
            headline={"metric %": 12.0},
            notes="a note",
        )
        text = result.to_text()
        assert "[figX]" in text
        assert "metric %" in text
        assert "a note" in text


class TestAgingCampaignFigures:
    @pytest.fixture(scope="class")
    def figs(self):
        return {
            "fig03": fig03_voltage.run(),
            "fig04": fig04_capacity.run(),
            "fig05": fig05_efficiency.run(),
        }

    def test_fig03_voltage_drops_meaningfully(self, figs):
        drop = figs["fig03"].headline["voltage drop over 6 months %"]
        assert 5.0 < drop < 15.0  # paper: ~9 %

    def test_fig03_droop_accelerates(self, figs):
        early = figs["fig03"].headline["early droop (V/month)"]
        late = figs["fig03"].headline["late droop (V/month)"]
        assert late > early  # paper: 0.1 -> 0.3 V/month

    def test_fig04_capacity_drop_near_paper(self, figs):
        drop = figs["fig04"].headline["stored-energy drop over 6 months %"]
        assert 9.0 < drop < 20.0  # paper: ~14 %

    def test_fig05_efficiency_degrades(self, figs):
        drop = figs["fig05"].headline["efficiency drop over 6 months %"]
        assert 3.0 < drop < 14.0  # paper: ~8 %

    def test_fig04_monotone_decay(self, figs):
        energies = [row[1] for row in figs["fig04"].rows]
        assert energies == sorted(energies, reverse=True)


class TestFig10:
    def test_half_life_above_fifty_percent_dod(self):
        result = fig10_cycle_life.run()
        cut = result.headline["cycle-life reduction, 25% -> 55% DoD %"]
        assert cut > 40.0  # paper: ~50 %

    def test_rows_cover_dod_range(self):
        result = fig10_cycle_life.run()
        assert result.rows[0][0] == "20%"
        assert result.rows[-1][0] == "100%"
