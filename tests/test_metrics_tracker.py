"""Unit tests for the online metrics tracker."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.tracker import MetricsTracker
from repro.units import hours


@pytest.fixture
def tracker(params):
    return MetricsTracker(params, name="b0")


class TestLifetime:
    def test_empty_tracker_is_neutral(self, tracker):
        m = tracker.lifetime()
        assert m.nat == 0.0
        assert m.cf == 1.0
        assert m.ddt == 0.0

    def test_accumulates(self, tracker):
        tracker.observe(0.9, 7.0, hours(2))
        assert tracker.lifetime().discharged_ah == pytest.approx(14.0)


class TestMarks:
    def test_since_mark_isolates_window(self, tracker):
        tracker.observe(0.9, 7.0, hours(1))
        tracker.mark("day")
        tracker.observe(0.3, 7.0, hours(1))
        window = tracker.since("day")
        assert window.discharged_ah == pytest.approx(7.0)
        assert window.pc == pytest.approx(1.0)  # all output in region D

    def test_unknown_mark_raises(self, tracker):
        with pytest.raises(ConfigurationError):
            tracker.since("nope")

    def test_has_mark(self, tracker):
        assert not tracker.has_mark("day")
        tracker.mark("day")
        assert tracker.has_mark("day")

    def test_remarking_moves_the_window(self, tracker):
        tracker.mark("w")
        tracker.observe(0.9, 7.0, hours(1))
        tracker.mark("w")
        tracker.observe(0.9, 3.5, hours(1))
        assert tracker.since("w").discharged_ah == pytest.approx(3.5)

    def test_window_between_marks(self, tracker):
        tracker.mark("a")
        tracker.observe(0.9, 7.0, hours(1))
        tracker.mark("b")
        tracker.observe(0.9, 7.0, hours(1))
        between = tracker.window_between("a", "b")
        assert between.discharged_ah == pytest.approx(7.0)

    def test_window_between_requires_both_marks(self, tracker):
        tracker.mark("a")
        with pytest.raises(ConfigurationError):
            tracker.window_between("a", "b")
