"""Integration tests for the simulation engine."""

import pytest

from repro.core.policies.factory import make_policy
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation, run_policy_on_trace
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass
from repro.units import SECONDS_PER_DAY


class TestWiring:
    def test_dt_mismatch_rejected(self, tiny_scenario):
        other = Scenario(n_nodes=3, dt_s=60.0)
        trace = other.trace_generator().day(DayClass.SUNNY)
        with pytest.raises(ConfigurationError):
            Simulation(tiny_scenario, make_policy("e-buff"), trace)

    def test_deploy_places_all_vms(self, tiny_scenario, one_sunny_day):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        sim.deploy()
        assert len(sim.cluster.vms) == len(tiny_scenario.effective_workloads())
        assert all(vm.host is not None for vm in sim.cluster.vms.values())

    def test_deploy_is_idempotent(self, tiny_scenario, one_sunny_day):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        sim.deploy()
        sim.deploy()
        assert len(sim.cluster.vms) == len(tiny_scenario.effective_workloads())


class TestRun:
    def test_result_shape(self, tiny_scenario, one_sunny_day):
        result = run_policy_on_trace(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        assert result.policy_name == "e-buff"
        assert result.duration_s == pytest.approx(SECONDS_PER_DAY)
        assert result.throughput > 0.0
        assert len(result.nodes) == 3

    def test_batteries_advance_exactly_trace_duration(
        self, tiny_scenario, one_sunny_day
    ):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        sim.run()
        for node in sim.cluster:
            assert node.battery.time_s == pytest.approx(one_sunny_day.duration_s)

    def test_soc_stays_in_bounds(self, tiny_scenario, one_cloudy_day):
        sim = Simulation(
            tiny_scenario, make_policy("e-buff"), one_cloudy_day, record_series=True
        )
        sim.run()
        for node in sim.cluster:
            series = sim.recorder.soc_series[node.name]
            assert all(0.0 <= s <= 1.0 for s in series)

    def test_no_progress_outside_operating_window(self, tiny_scenario, one_sunny_day):
        sim = Simulation(
            tiny_scenario, make_policy("e-buff"), one_sunny_day, record_series=True
        )
        sim.run()
        arrays = sim.recorder.as_arrays()
        # Demand must be zero before the window opens (servers admin-off).
        early = arrays["demand_w"][: int(8.0 * 3600 / tiny_scenario.dt_s)]
        assert (early == 0.0).all()

    def test_sunny_day_charges_batteries(self, tiny_scenario):
        from dataclasses import replace

        scenario = replace(tiny_scenario, initial_soc=0.5)
        trace = scenario.trace_generator().day(DayClass.SUNNY)
        result = run_policy_on_trace(scenario, make_policy("e-buff"), trace)
        for node in result.nodes:
            assert node.final_soc > 0.5

    def test_determinism(self, tiny_scenario, one_cloudy_day):
        a = run_policy_on_trace(tiny_scenario, make_policy("baat"), one_cloudy_day)
        b = run_policy_on_trace(tiny_scenario, make_policy("baat"), one_cloudy_day)
        assert a.throughput == b.throughput
        assert a.worst_damage_per_day() == b.worst_damage_per_day()
        assert [n.final_soc for n in a.nodes] == [n.final_soc for n in b.nodes]

    def test_aging_accrues(self, tiny_scenario, one_cloudy_day):
        result = run_policy_on_trace(
            tiny_scenario, make_policy("e-buff"), one_cloudy_day
        )
        assert all(n.fade_added > 0.0 for n in result.nodes)


class TestResultViews:
    def test_worst_node_selection(self, tiny_scenario, one_cloudy_day):
        result = run_policy_on_trace(
            tiny_scenario, make_policy("e-buff"), one_cloudy_day
        )
        worst = result.worst_node()
        assert worst.fade_added == max(n.fade_added for n in result.nodes)
        worst_ah = result.worst_node_by_throughput_ah()
        assert worst_ah.discharged_ah == max(n.discharged_ah for n in result.nodes)

    def test_damage_rates(self, tiny_scenario, one_cloudy_day):
        result = run_policy_on_trace(
            tiny_scenario, make_policy("e-buff"), one_cloudy_day
        )
        assert result.worst_damage_per_day() >= result.mean_damage_per_day() > 0.0

    def test_throughput_per_day(self, tiny_scenario, one_sunny_day):
        result = run_policy_on_trace(
            tiny_scenario, make_policy("e-buff"), one_sunny_day
        )
        assert result.throughput_per_day() == pytest.approx(result.throughput)


class TestAmbientCycle:
    def test_battery_temperature_follows_diurnal_ambient(self, tiny_scenario):
        """Ambient peaks mid-afternoon; idle batteries must track it."""
        from dataclasses import replace

        scenario = replace(tiny_scenario, ambient_swing_c=10.0)
        trace = scenario.trace_generator().day(DayClass.SUNNY)
        sim = Simulation(scenario, make_policy("e-buff"), trace)
        temps = {}
        dt = scenario.dt_s
        steps_per_hour = int(3600 / dt)

        # Run manually up to late night and mid-afternoon and compare.
        sim.deploy()
        result = sim.run()
        # After a full day the engine has applied the cycle; spot-check by
        # computing the ambient the engine would set.
        import math

        def ambient(tod_h):
            return scenario.ambient_mean_c + 0.5 * scenario.ambient_swing_c * math.cos(
                2.0 * math.pi * (tod_h - 14.0) / 24.0
            )

        assert ambient(14.0) > ambient(2.0)
        assert ambient(14.0) == pytest.approx(
            scenario.ambient_mean_c + 0.5 * scenario.ambient_swing_c
        )
        # And the battery ends the day at a plausible shelf temperature.
        for node in sim.cluster:
            assert 10.0 < node.battery.thermal.temperature_c < 45.0


class TestBeginOnce:
    """Regression: ``_begin`` was guarded by ``if self._fade_start:``.

    An empty cluster leaves ``_fade_start`` empty (falsy), so one-time
    setup re-ran on every step — re-marking trackers and resetting the
    step counter. The guard is now an explicit ``_begun`` flag.
    """

    def test_begin_runs_setup_exactly_once(
        self, tiny_scenario, one_sunny_day, monkeypatch
    ):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        calls = []
        original = sim.deploy
        monkeypatch.setattr(
            sim, "deploy", lambda: (calls.append(None), original())[-1]
        )
        sim.step_once()
        sim.step_once()
        assert calls == [None]
        assert sim.steps_done == 2

    def test_empty_cluster_begins_exactly_once(
        self, tiny_scenario, one_sunny_day, monkeypatch
    ):
        from dataclasses import replace

        scenario = replace(tiny_scenario, workloads=())
        sim = Simulation(scenario, make_policy("e-buff"), one_sunny_day)
        sim.cluster.nodes.clear()
        sim.cluster._by_name.clear()
        calls = []
        original = sim.deploy
        monkeypatch.setattr(
            sim, "deploy", lambda: (calls.append(None), original())[-1]
        )
        sim.step_once()
        sim.step_once()
        assert sim._fade_start == {}  # the old, falsy sentinel
        assert calls == [None]
        assert sim.steps_done == 2

    def test_cadences_hoisted_at_begin(self, tiny_scenario, one_sunny_day):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        sim.step_once()
        assert sim._control_every == max(
            1, round(tiny_scenario.control_interval_s / tiny_scenario.dt_s)
        )
        assert sim._steps_per_day == round(SECONDS_PER_DAY / tiny_scenario.dt_s)

    def test_recorded_draws_match_public_current(self, tiny_scenario, one_cloudy_day):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_cloudy_day)
        for _ in range(20):
            sim.step_once()
        for node in sim.cluster:
            assert sim._last_draws[node.name] == node.battery.last_current_a
