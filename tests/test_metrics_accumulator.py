"""Unit tests for the metrics accumulator and SoC regions."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.accumulator import (
    DEEP_DISCHARGE_SOC,
    MetricsAccumulator,
    soc_region,
)
from repro.units import hours


class TestSocRegion:
    @pytest.mark.parametrize(
        "soc,region",
        [(1.0, "A"), (0.80, "A"), (0.79, "B"), (0.60, "B"), (0.59, "C"), (0.40, "C"), (0.39, "D"), (0.0, "D")],
    )
    def test_region_boundaries(self, soc, region):
        assert soc_region(soc) == region


class TestObserve:
    def test_discharge_accumulates_ah(self):
        acc = MetricsAccumulator()
        acc.observe(0.9, 7.0, hours(2), reference_current=1.75)
        assert acc.discharged_ah == pytest.approx(14.0)
        assert acc.region_discharged_ah["A"] == pytest.approx(14.0)

    def test_charge_accumulates_separately(self):
        acc = MetricsAccumulator()
        acc.observe(0.5, -3.5, hours(2), reference_current=1.75)
        assert acc.charged_ah == pytest.approx(7.0)
        assert acc.discharged_ah == 0.0

    def test_rest_accumulates_only_time(self):
        acc = MetricsAccumulator()
        acc.observe(0.9, 0.0, hours(5), reference_current=1.75)
        assert acc.total_time_s == pytest.approx(hours(5))
        assert acc.discharged_ah == 0.0

    def test_deep_discharge_time(self):
        acc = MetricsAccumulator()
        acc.observe(0.3, 0.0, hours(2), reference_current=1.75)
        acc.observe(0.6, 0.0, hours(3), reference_current=1.75)
        assert acc.deep_discharge_time_s == pytest.approx(hours(2))

    def test_deep_threshold_is_forty_percent(self):
        acc = MetricsAccumulator()
        acc.observe(DEEP_DISCHARGE_SOC, 0.0, 60.0, reference_current=1.75)
        assert acc.deep_discharge_time_s == 0.0
        acc.observe(DEEP_DISCHARGE_SOC - 0.01, 0.0, 60.0, reference_current=1.75)
        assert acc.deep_discharge_time_s == 60.0

    def test_peak_current_tracked(self):
        acc = MetricsAccumulator()
        acc.observe(0.8, 3.0, 60.0, reference_current=1.75)
        acc.observe(0.8, 9.0, 60.0, reference_current=1.75)
        acc.observe(0.8, 5.0, 60.0, reference_current=1.75)
        assert acc.peak_discharge_current_a == 9.0

    def test_high_rate_low_soc_exposure(self):
        acc = MetricsAccumulator()
        acc.observe(0.3, 5.0, 60.0, reference_current=1.75)  # dangerous
        acc.observe(0.3, 1.0, 60.0, reference_current=1.75)  # low rate
        acc.observe(0.8, 5.0, 60.0, reference_current=1.75)  # high SoC
        assert acc.high_rate_low_soc_time_s == 60.0

    def test_rejects_negative_dt(self):
        acc = MetricsAccumulator()
        with pytest.raises(ConfigurationError):
            acc.observe(0.5, 1.0, -60.0, reference_current=1.75)


class TestWindows:
    def test_subtraction_gives_window(self):
        acc = MetricsAccumulator()
        acc.observe(0.9, 7.0, hours(1), reference_current=1.75)
        snap = acc.copy()
        acc.observe(0.5, 7.0, hours(1), reference_current=1.75)
        window = acc - snap
        assert window.discharged_ah == pytest.approx(7.0)
        assert window.region_discharged_ah["C"] == pytest.approx(7.0)
        assert window.region_discharged_ah["A"] == pytest.approx(0.0)
        assert window.total_time_s == pytest.approx(hours(1))

    def test_copy_is_independent(self):
        acc = MetricsAccumulator()
        acc.observe(0.9, 7.0, hours(1), reference_current=1.75)
        snap = acc.copy()
        acc.observe(0.9, 7.0, hours(1), reference_current=1.75)
        assert snap.discharged_ah == pytest.approx(7.0)
        assert acc.discharged_ah == pytest.approx(14.0)
