"""Unit tests for the combined aging model."""

import pytest

from repro.battery.aging.conditions import OperatingConditions
from repro.battery.aging.model import AgingModel, AgingState
from repro.units import days, hours


def conditions(**overrides) -> OperatingConditions:
    base = dict(
        soc=0.8,
        current=0.0,
        temperature_c=25.0,
        reference_current=1.75,
        capacity_ah=35.0,
    )
    base.update(overrides)
    return OperatingConditions(**base)


class TestAccumulation:
    def test_starts_fresh(self):
        model = AgingModel()
        assert model.capacity_fade == 0.0
        assert model.health == 1.0
        assert not model.is_end_of_life

    def test_step_returns_added_fade(self):
        model = AgingModel()
        added = model.step(conditions(current=5.0, soc=0.3), hours(1))
        assert added > 0.0
        assert model.capacity_fade == pytest.approx(added)

    def test_damage_accumulates_across_steps(self):
        model = AgingModel()
        for _ in range(10):
            model.step(conditions(current=5.0, soc=0.3), hours(1))
        assert model.capacity_fade > 0.0
        assert len(model.state.damage) >= 2  # several mechanisms active

    def test_rejects_negative_dt(self):
        model = AgingModel()
        with pytest.raises(ValueError):
            model.step(conditions(), -1.0)

    def test_tracks_throughput(self):
        model = AgingModel()
        model.step(conditions(current=5.0), hours(2))
        model.step(conditions(current=-3.0), hours(2))
        assert model.state.discharged_ah == pytest.approx(10.0)
        assert model.state.charged_ah == pytest.approx(6.0)


class TestFeedback:
    def test_aged_battery_ages_faster(self):
        """Positive feedback: identical conditions damage an aged battery
        more per step than a fresh one."""
        fresh = AgingModel()
        aged = AgingModel()
        aged.state.damage["active_mass"] = 0.10
        d_fresh = fresh.step(conditions(current=5.0, soc=0.3), hours(1))
        d_aged = aged.step(conditions(current=5.0, soc=0.3), hours(1))
        assert d_aged > d_fresh

    def test_feedback_can_be_disabled(self):
        flat = AgingModel(feedback_gain=0.0)
        flat.state.damage["active_mass"] = 0.10
        fresh = AgingModel(feedback_gain=0.0)
        d_flat = flat.step(conditions(current=5.0, soc=0.3), hours(1))
        d_fresh = fresh.step(conditions(current=5.0, soc=0.3), hours(1))
        assert d_flat == pytest.approx(d_fresh)


class TestDerivedQuantities:
    def test_resistance_growth_from_resistive_mechanisms(self):
        model = AgingModel()
        model.state.damage["corrosion"] = 0.05
        assert model.resistance_growth > 0.0

    def test_nonresistive_damage_grows_resistance_less(self):
        corroded = AgingModel()
        corroded.state.damage["corrosion"] = 0.05
        shed = AgingModel()
        shed.state.damage["active_mass"] = 0.05
        assert corroded.resistance_growth > shed.resistance_growth

    def test_coulombic_factor_degrades_with_fade(self):
        model = AgingModel()
        model.state.damage["active_mass"] = 0.10
        assert model.coulombic_efficiency_factor < 1.0

    def test_end_of_life_at_twenty_percent(self):
        model = AgingModel()
        model.state.damage["active_mass"] = 0.21
        assert model.is_end_of_life
        assert model.health == 0.0

    def test_breakdown_sums_to_one(self):
        model = AgingModel()
        for _ in range(5):
            model.step(conditions(current=5.0, soc=0.3), hours(1))
        breakdown = model.damage_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_breakdown_empty_when_new(self):
        assert AgingModel().damage_breakdown() == {}


class TestAgingState:
    def test_copy_is_independent(self):
        state = AgingState(damage={"corrosion": 0.01}, discharged_ah=5.0)
        snap = state.copy()
        state.damage["corrosion"] = 0.05
        state.discharged_ah = 10.0
        assert snap.damage["corrosion"] == 0.01
        assert snap.discharged_ah == 5.0

    def test_fade_of_missing_mechanism_is_zero(self):
        assert AgingState().fade_of("corrosion") == 0.0


class TestCalibration:
    def test_six_month_aggressive_cycling_near_paper_fade(self):
        """Integrated sanity check: a ~50 % DoD daily cycle for 180 days
        lands near the paper's ~14 % measured fade (broad tolerance)."""
        model = AgingModel()
        for _ in range(180):
            # 5 h discharge at ~2x reference rate around mid SoC.
            model.step(conditions(current=3.5, soc=0.7), hours(2.5))
            model.step(conditions(current=3.5, soc=0.5), hours(2.5))
            # 8 h recharge with mild gassing near the top.
            model.step(conditions(current=-3.0, soc=0.8), hours(6))
            model.step(
                conditions(current=-1.0, soc=0.95, gassing_current=0.3), hours(2)
            )
            model.step(conditions(soc=1.0), hours(11))
        assert 0.06 < model.capacity_fade < 0.25


class TestStratificationRecovery:
    def test_full_charge_recovers_recent_stratification(self):
        model = AgingModel()
        for _ in range(20):
            model.step(
                conditions(current=2.0, soc=0.5, hours_since_full_charge=100.0),
                hours(5),
            )
        before = model.state.damage["stratification"]
        recovered = model.recover_stratification(fraction=0.25)
        assert recovered > 0.0
        assert model.state.damage["stratification"] == pytest.approx(
            before - recovered
        )

    def test_pre_existing_damage_is_not_recoverable(self):
        """Recovery only applies to stratification accrued since the last
        full charge; injected (historic) damage is permanent."""
        model = AgingModel()
        model.state.damage["stratification"] = 0.05
        assert model.recover_stratification(fraction=1.0) == 0.0
        assert model.state.damage["stratification"] == 0.05

    def test_unstirred_residue_becomes_permanent(self):
        model = AgingModel()
        for _ in range(10):
            model.step(
                conditions(current=2.0, soc=0.5, hours_since_full_charge=100.0),
                hours(5),
            )
        model.recover_stratification(fraction=0.25)
        # A second recovery without new cycling finds nothing to stir.
        assert model.recover_stratification(fraction=1.0) == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            AgingModel().recover_stratification(fraction=1.5)
