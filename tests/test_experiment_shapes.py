"""Shape tests for the simulation-backed experiments.

Runs the cheaper quick-mode experiments end-to-end and asserts the
directional claims of the corresponding paper figures. The expensive
sweeps (figs 14-17) are exercised by the benchmark suite instead.
"""

import pytest

from repro.experiments import (
    fig12_profiling,
    fig18_low_soc,
    fig19_soc_distribution,
    fig20_throughput,
    fig22_planned_aging,
)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_profiling.run(quick=True)

    def test_three_weather_rows(self, result):
        assert [row[0] for row in result.rows] == ["sunny", "cloudy", "rainy"]

    def test_solar_budgets_ordered(self, result):
        kwh = [row[1] for row in result.rows]
        assert kwh[0] > kwh[1] > kwh[2]

    def test_sunny_day_barely_cycles_battery(self, result):
        """The paper's core Fig.-12 observation: sunny days yield far
        less Ah throughput and no deep discharge."""
        by_day = {row[0]: row for row in result.rows}
        assert by_day["sunny"][2] < by_day["cloudy"][2]
        assert by_day["sunny"][6] == 0.0  # DDT
        assert by_day["rainy"][6] > 0.2

    def test_rainy_day_has_low_charge_factor(self, result):
        by_day = {row[0]: row for row in result.rows}
        assert by_day["rainy"][4] < by_day["sunny"][4]

    def test_battery_usage_varies_across_nodes(self, result):
        spreads = [row[7] for row in result.rows]
        assert max(spreads) > 0.1


class TestFig18:
    @pytest.fixture(scope="class")
    def result(self):
        return fig18_low_soc.run(quick=True)

    def test_baat_improves_availability(self, result):
        assert result.headline["BAAT availability improvement %"] > 0.0

    def test_baat_has_least_low_soc_exposure(self, result):
        by_scheme = {row[0]: row for row in result.rows}
        assert by_scheme["baat"][1] <= by_scheme["e-buff"][1]


class TestFig19:
    @pytest.fixture(scope="class")
    def result(self):
        return fig19_soc_distribution.run(quick=True)

    def test_rows_are_distributions(self, result):
        for row in result.rows:
            assert sum(row[1:]) == pytest.approx(1.0, abs=1e-6)

    def test_baat_evacuates_the_deepest_bin(self, result):
        """BAAT keeps batteries out of the 0-15 % SoC bin e-Buff lives in."""
        by_scheme = {row[0]: row for row in result.rows}
        assert by_scheme["baat"][1] < by_scheme["e-buff"][1]

    def test_baat_holds_more_high_soc_time(self, result):
        by_scheme = {row[0]: row for row in result.rows}
        baat_high = sum(by_scheme["baat"][5:])
        ebuff_high = sum(by_scheme["e-buff"][5:])
        assert baat_high > ebuff_high


class TestFig20:
    @pytest.fixture(scope="class")
    def result(self):
        return fig20_throughput.run(quick=True)

    def test_baat_wins_the_worst_case(self, result):
        assert result.headline["BAAT best gain over e-Buff %"] > 0.0

    def test_baat_s_and_h_pay_their_penalties(self, result):
        """BAAT-s pays DVFS, BAAT-h pays migration churn (Fig. 20).

        The penalties are asserted on the cloudy/old cell: there e-Buff's
        cut-off downtime stays small, so the DVFS / migration costs are
        the dominant difference. On rainy/old e-Buff is crippled by
        downtime, which can swamp the single-knob penalties entirely.
        """
        cloudy = {row[1]: row for row in result.rows if row[0] == "cloudy/old"}
        assert cloudy["baat-s"][3] < 0.0
        assert cloudy["baat-h"][3] < 0.0
        assert cloudy["baat-s"][6] > 0  # dvfs count
        assert cloudy["baat-h"][5] > 0  # migration count
        # Either knob alone also trails the coordinated scheme.
        rainy = {row[1]: row for row in result.rows if row[0] == "rainy/old"}
        assert rainy["baat-s"][2] < rainy["baat"][2]
        assert rainy["baat-h"][2] < rainy["baat"][2]

    def test_baat_cuts_downtime(self, result):
        rainy = {row[1]: row for row in result.rows if row[0] == "rainy/old"}
        assert rainy["baat"][4] < rainy["e-buff"][4]


class TestFig22:
    @pytest.fixture(scope="class")
    def result(self):
        return fig22_planned_aging.run(quick=True)

    def test_dod_goal_shrinks_with_horizon(self, result):
        goals = [row[1] for row in result.rows]
        assert goals == sorted(goals, reverse=True)

    def test_short_horizon_spends_batteries_faster(self, result):
        fades = [row[4] for row in result.rows]
        assert fades[0] > fades[-1]

    def test_aggressive_plan_buys_productivity(self, result):
        gains = [row[3] for row in result.rows]
        assert gains[0] > gains[-1]
