"""Unit tests for the Table-4 policies and factory."""

import pytest

from repro.core.policies import (
    BAATHidingPolicy,
    BAATPolicy,
    BAATSlowdownPolicy,
    EBuffPolicy,
    PlannedAgingPolicy,
    POLICY_NAMES,
    make_policy,
)
from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.vm import VM
from repro.datacenter.workloads import PAPER_WORKLOADS, WorkloadProfile
from repro.errors import ConfigurationError


@pytest.fixture
def cluster():
    return Cluster([Node.build(f"node{i}") for i in range(3)])


def light_vm(name):
    profile = WorkloadProfile(
        name=f"wl-{name}", mean_util=0.3, burst_util=0.0, period_s=3600.0,
        burstiness=0.0,
    )
    return VM(name=name, workload=profile)


class TestFactory:
    def test_table4_names(self):
        assert POLICY_NAMES == ("e-buff", "baat-s", "baat-h", "baat")

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("e-buff", EBuffPolicy),
            ("baat-s", BAATSlowdownPolicy),
            ("baat-h", BAATHidingPolicy),
            ("baat", BAATPolicy),
            ("baat-planned", PlannedAgingPolicy),
        ],
    )
    def test_builds_correct_class(self, name, cls):
        policy = make_policy(name)
        assert isinstance(policy, cls)
        assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_policy("yolo")

    def test_descriptions_nonempty(self):
        for name in POLICY_NAMES:
            assert make_policy(name).describe()


class TestBinding:
    def test_unbound_policy_refuses_work(self):
        with pytest.raises(ConfigurationError):
            EBuffPolicy().place_vm(light_vm("a"))

    def test_bind_builds_controller_and_scheduler(self, cluster):
        policy = make_policy("baat")
        policy.bind(cluster)
        assert policy.controller is not None
        assert policy.scheduler is not None
        assert policy.monitor is not None

    def test_baat_s_monitor_is_dvfs_only(self, cluster):
        policy = make_policy("baat-s")
        policy.bind(cluster)
        assert policy.monitor.config.prefer_migration is False
        assert policy.monitor.config.allow_parking is False

    def test_baat_monitor_prefers_migration(self, cluster):
        policy = make_policy("baat")
        policy.bind(cluster)
        assert policy.monitor.config.prefer_migration is True
        assert policy.monitor.config.allow_parking is True


class TestPlacementStyles:
    def test_ebuff_places_naively(self, cluster):
        policy = make_policy("e-buff")
        policy.bind(cluster)
        # Stress node0's battery; e-Buff must not care.
        for _ in range(16):
            cluster.node("node0").battery.discharge(120.0, 900.0)
            cluster.node("node0").observe_battery(900.0)
        assert policy.place_vm(light_vm("a")) == "node0"

    def test_baat_places_aging_aware(self, cluster):
        policy = make_policy("baat")
        policy.bind(cluster)
        for _ in range(16):
            cluster.node("node0").battery.discharge(120.0, 900.0)
            cluster.node("node0").observe_battery(900.0)
        assert policy.place_vm(light_vm("a")) != "node0"

    def test_baat_h_places_by_nat(self, cluster):
        policy = make_policy("baat-h")
        policy.bind(cluster)
        for _ in range(16):
            cluster.node("node1").battery.discharge(120.0, 900.0)
            cluster.node("node1").observe_battery(900.0)
        assert policy.place_vm(light_vm("a")) != "node1"


class TestControlBehaviour:
    def test_ebuff_control_is_inert(self, cluster):
        policy = make_policy("e-buff")
        policy.bind(cluster)
        policy.control(0.0, 60.0, {n.name: 100.0 for n in cluster}, solar_w=0.0)
        for node in cluster:
            assert node.server.frequency == 1.0
            assert node.discharge_cap_w == float("inf")

    def test_baat_s_throttles_stressed_node(self, cluster):
        policy = make_policy("baat-s")
        policy.bind(cluster)
        node = cluster.node("node0")
        node.battery._soc = 0.3
        policy.control(12 * 3600.0, 60.0, {n.name: 150.0 for n in cluster})
        assert node.server.frequency < 1.0

    def test_baat_h_migrates_off_imbalanced_node(self, cluster):
        policy = make_policy("baat-h")
        policy.bind(cluster)
        vm = light_vm("a")
        cluster.place(vm, "node0")
        # Create a NAT imbalance on node0.
        for _ in range(16):
            cluster.node("node0").battery.discharge(120.0, 900.0)
            cluster.node("node0").observe_battery(900.0)
        policy.control(3600.0, 60.0, {n.name: 0.0 for n in cluster})
        assert vm.host != "node0"
        assert policy.migrations == 1

    def test_planned_policy_overrides_thresholds(self, cluster):
        policy = PlannedAgingPolicy(service_life_days=200.0)
        policy.bind(cluster)
        assert policy.monitor is not None
        for node in cluster:
            assert node.name in policy.monitor.low_soc_override
        goals = policy.current_goals()
        assert all(0.1 <= g <= 0.9 for g in goals.values())

    def test_planned_fixed_goal(self, cluster):
        policy = PlannedAgingPolicy(service_life_days=200.0, fixed_dod_goal=0.5)
        policy.bind(cluster)
        for node in cluster:
            assert policy.monitor.low_soc_override[node.name] == pytest.approx(0.5)


class TestConsolidation:
    def test_consolidation_parks_under_stress(self, cluster):
        policy = make_policy("baat")
        policy.bind(cluster)
        for node in cluster:
            cluster.place(light_vm(f"vm-{node.name}"), node.name)
            node.battery._soc = 0.35
        # Tiny solar late in the day: the cluster is over-committed.
        policy.control(16 * 3600.0, 60.0, {n.name: 100.0 for n in cluster}, solar_w=50.0)
        parked = [n for n in cluster if n.server.policy_off]
        assert parked  # at least one server parked
        for node in parked:
            assert node.discharge_cap_w == 0.0

    def test_wake_on_solar_headroom(self, cluster):
        policy = make_policy("baat")
        policy.bind(cluster)
        cluster.node("node2").server.policy_off = True
        policy.control(12 * 3600.0, 60.0, {n.name: 0.0 for n in cluster}, solar_w=5000.0)
        assert not cluster.node("node2").server.policy_off
