"""Unit tests for the trace recorder."""

import pytest

from repro.datacenter.power_path import PowerFlows
from repro.errors import ConfigurationError
from repro.sim.recorder import (
    LOW_SOC_THRESHOLD,
    SOC_BIN_LABELS,
    TraceRecorder,
    soc_bin,
)


def flows(demand=100.0, solar=50.0):
    return PowerFlows(
        demand_w=demand,
        solar_available_w=solar,
        solar_to_load_w=min(demand, solar),
        solar_to_battery_w=0.0,
        battery_to_load_w=max(0.0, demand - solar),
        utility_to_load_w=0.0,
        grid_feedback_w=0.0,
        unserved_w=0.0,
        browned_out_nodes=0,
    )


class TestSocBins:
    def test_seven_paper_bins(self):
        assert SOC_BIN_LABELS == tuple(f"SoC{i}" for i in range(1, 8))

    @pytest.mark.parametrize(
        "soc,idx",
        [(0.0, 0), (0.14, 0), (0.15, 1), (0.44, 2), (0.45, 3), (0.89, 5), (0.90, 6), (1.0, 6)],
    )
    def test_bin_edges(self, soc, idx):
        assert soc_bin(soc) == idx

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            soc_bin(1.5)


class TestRecording:
    def test_distributions_always_recorded(self):
        rec = TraceRecorder(["a", "b"], record_series=False)
        rec.record(0.0, 60.0, flows(), {"a": 0.95, "b": 0.2})
        rec.record(60.0, 60.0, flows(), {"a": 0.95, "b": 0.2})
        dist = rec.soc_distribution("a")
        assert dist["SoC7"] == pytest.approx(1.0)
        assert rec.soc_distribution("b")["SoC2"] == pytest.approx(1.0)

    def test_low_soc_accounting(self):
        rec = TraceRecorder(["a"])
        rec.record(0.0, 60.0, flows(), {"a": LOW_SOC_THRESHOLD - 0.01})
        rec.record(60.0, 60.0, flows(), {"a": LOW_SOC_THRESHOLD + 0.01})
        assert rec.low_soc_time_s["a"] == 60.0
        assert rec.low_soc_fraction("a") == pytest.approx(0.5)
        assert rec.worst_low_soc_time_s() == 60.0

    def test_series_capture(self):
        rec = TraceRecorder(["a"], record_series=True)
        rec.record(0.0, 60.0, flows(demand=123.0), {"a": 0.8})
        arrays = rec.as_arrays()
        assert arrays["demand_w"][0] == 123.0
        assert arrays["soc/a"][0] == 0.8

    def test_series_skipped_when_disabled(self):
        rec = TraceRecorder(["a"], record_series=False)
        rec.record(0.0, 60.0, flows(), {"a": 0.8})
        assert len(rec.times_s) == 0

    def test_empty_distribution(self):
        rec = TraceRecorder(["a"])
        assert rec.soc_distribution("a")["SoC1"] == 0.0
        assert rec.low_soc_fraction("a") == 0.0


class TestEpsilonDrift:
    """Regression: integrator round-off used to crash the recorder.

    SoC integration can land epsilon outside [0, 1]; ``soc_bin`` now
    clamps drift within SOC_DRIFT_TOLERANCE instead of raising, while
    genuinely out-of-range values are still rejected.
    """

    def test_epsilon_above_one_is_clamped(self):
        assert soc_bin(1.0 + 1e-12) == 6

    def test_epsilon_below_zero_is_clamped(self):
        assert soc_bin(-1e-12) == 0

    def test_beyond_tolerance_still_rejected(self):
        with pytest.raises(ConfigurationError):
            soc_bin(1.0 + 1e-3)
        with pytest.raises(ConfigurationError):
            soc_bin(-1e-3)

    def test_record_accepts_integrator_drift(self):
        rec = TraceRecorder(["a"], record_series=True)
        rec.record(0.0, 60.0, flows(), {"a": 1.0 + 1e-12})
        assert rec.soc_distribution("a")["SoC7"] == pytest.approx(1.0)
        assert rec.soc_series["a"][0] == 1.0
