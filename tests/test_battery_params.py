"""Unit tests for battery parameters."""

import pytest

from repro.battery.params import PAPER_BATTERY, BatteryParams
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_battery_is_12v_35ah(self):
        assert PAPER_BATTERY.nominal_voltage == 12.0
        assert PAPER_BATTERY.capacity_ah == 35.0
        assert PAPER_BATTERY.cells == 6

    def test_reference_current_is_20_hour_rate(self, params):
        assert params.reference_current == pytest.approx(35.0 / 20.0)

    def test_nominal_energy(self, params):
        assert params.nominal_energy_wh == pytest.approx(420.0)

    def test_lifetime_throughput_is_cycles_times_capacity(self, params):
        assert params.lifetime_ah_throughput == pytest.approx(
            params.lifetime_full_cycles * params.capacity_ah
        )

    def test_ocv_window_ordering(self, params):
        assert params.ocv_empty < params.ocv_full
        assert params.cutoff_voltage < params.ocv_empty


class TestValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            BatteryParams(capacity_ah=0.0)

    def test_rejects_inverted_ocv_window(self):
        with pytest.raises(ConfigurationError):
            BatteryParams(ocv_full=11.0, ocv_empty=12.0)

    def test_rejects_negative_resistance(self):
        with pytest.raises(ConfigurationError):
            BatteryParams(internal_resistance_ohm=-0.01)

    def test_rejects_bad_cutoff_soc(self):
        with pytest.raises(ConfigurationError):
            BatteryParams(cutoff_soc=1.0)

    def test_rejects_peukert_below_one(self):
        with pytest.raises(ConfigurationError):
            BatteryParams(peukert_exponent=0.9)

    def test_rejects_bad_coulombic_efficiency(self):
        with pytest.raises(ConfigurationError):
            BatteryParams(coulombic_efficiency=0.0)

    def test_rejects_bad_eol_fraction(self):
        with pytest.raises(ConfigurationError):
            BatteryParams(eol_capacity_fraction=1.0)


class TestScaling:
    def test_with_capacity_scales_resistance_inversely(self, params):
        bigger = params.with_capacity(70.0)
        assert bigger.capacity_ah == 70.0
        assert bigger.internal_resistance_ohm == pytest.approx(
            params.internal_resistance_ohm / 2.0
        )

    def test_with_capacity_preserves_c_rate_reference(self, params):
        bigger = params.with_capacity(70.0)
        assert bigger.reference_current == pytest.approx(2.0 * params.reference_current)

    def test_with_capacity_scales_price(self, params):
        bigger = params.with_capacity(70.0)
        assert bigger.price_usd == pytest.approx(2.0 * params.price_usd)
