"""Tests for causal provenance (`repro.obs.provenance`).

The acceptance bar: a control action's causal chain reconstructs back to
its triggering SoC crossing / alert, and the chain is *identical*
whether the :class:`ProvenanceIndex` consumed the events live on the
bus or replayed them from the JSONL trace. Plus: `validate_trace`
catches schema drift, clock regressions, and unmatched spans; and every
registered event kind round-trips ``to_dict``/``event_from_dict``
losslessly (property test).
"""

from __future__ import annotations

import gzip
import json
from dataclasses import fields, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import RunSpec, run_campaign
from repro.core.policies.factory import make_policy
from repro.obs import (
    ALERTS,
    BUS,
    REGISTRY,
    disable_observability,
    enable_observability,
)
from repro.obs.events import EVENT_TYPES, event_from_dict
from repro.obs.provenance import (
    DEFAULT_EXPLAIN_KINDS,
    ProvenanceIndex,
    validate_trace,
)
from repro.obs.spans import SPANS
from repro.sim.engine import Simulation
from repro.solar.weather import DayClass


@pytest.fixture(autouse=True)
def _clean_obs_state():
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    ALERTS.enabled = False
    ALERTS.reset()
    SPANS.reset()
    yield
    disable_observability()
    BUS.clear_sinks()
    REGISTRY.enabled = False
    REGISTRY.reset()
    ALERTS.reset()
    SPANS.reset()


@pytest.fixture
def stressed_trace(tiny_scenario, tmp_path):
    """A traced rainy high-fade BAAT day (plenty of Fig.-9 reactions),
    indexed both live and from the JSONL file."""
    scenario = replace(tiny_scenario, initial_fade=0.15)
    trace = scenario.trace_generator().day(DayClass.RAINY)
    path = str(tmp_path / "stress.jsonl")
    live = ProvenanceIndex()
    enable_observability(path)
    BUS.add_sink(live)
    try:
        Simulation(scenario, make_policy("baat"), trace).run()
    finally:
        BUS.remove_sink(live)
        disable_observability()
    return live, path


def _chain_shape(index: ProvenanceIndex, eid: int):
    return [(e.kind, e.eid, e.cause_id, e.span_id) for e in index.chain(eid)]


class TestChainIdentityLiveVsReplay:
    def test_live_and_replayed_chains_are_identical(self, stressed_trace):
        live, path = stressed_trace
        replayed = ProvenanceIndex.from_trace(path)
        assert live.actions == replayed.actions
        assert live.actions, "a stressed day must produce control actions"
        for eid in live.actions:
            assert _chain_shape(live, eid) == _chain_shape(replayed, eid)

    def test_some_chain_reaches_the_triggering_root(self, stressed_trace):
        live, _ = stressed_trace
        rooted = [
            chain
            for chain in live.action_chains()
            if any(e.kind in ("soc_crossing", "alert") for e in chain[1:])
        ]
        assert rooted, (
            "at least one migration/DVFS chain must walk back to its "
            "triggering SoC crossing or alert"
        )

    def test_span_stats_match_between_views(self, stressed_trace):
        live, path = stressed_trace
        replayed = ProvenanceIndex.from_trace(path)
        assert live.span_stats() == replayed.span_stats()
        assert live.action_summary() == replayed.action_summary()

    def test_summary_covers_every_action(self, stressed_trace):
        live, _ = stressed_trace
        summary = live.action_summary()
        assert sum(
            count for per_kind in summary.values() for count in per_kind.values()
        ) == len(live.actions)
        for kind in summary:
            assert kind in (
                "slowdown_action", "vm_migrated", "dvfs_cap", "dvfs_uncap",
                "evacuation", "park", "wake", "consolidation", "dod_goal",
            )

    def test_chain_of_unknown_eid_is_empty(self, stressed_trace):
        live, _ = stressed_trace
        assert live.chain(10**9) == []

    def test_default_explain_kinds_filter(self, stressed_trace):
        live, _ = stressed_trace
        chains = live.action_chains()
        for chain in chains:
            assert chain[0].kind in DEFAULT_EXPLAIN_KINDS


class TestValidateTrace:
    def test_valid_trace_passes(self, stressed_trace):
        _, path = stressed_trace
        result = validate_trace(path)
        assert result.ok, [str(v) for v in result.violations]
        assert result.n_valid == result.n_lines > 0
        assert result.n_runs == 1

    def _write(self, tmp_path, lines):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(line + "\n" for line in lines))
        return str(path)

    def test_bad_json_is_a_violation(self, tmp_path):
        path = self._write(tmp_path, ['{"kind": "day_start"', "not json"])
        result = validate_trace(path)
        assert len(result.violations) == 2

    def test_unknown_kind_and_field(self, tmp_path):
        path = self._write(tmp_path, [
            '{"kind": "no_such_kind", "t": 0.0}',
            '{"kind": "day_start", "t": 0.0, "day_index": 0, "bogus": 1}',
        ])
        result = validate_trace(path)
        messages = [v.message for v in result.violations]
        assert any("unknown event kind" in m for m in messages)
        assert any("unknown field 'bogus'" in m for m in messages)

    def test_type_drift_is_a_violation(self, tmp_path):
        path = self._write(tmp_path, [
            '{"kind": "day_start", "t": "zero", "day_index": 0}',
        ])
        result = validate_trace(path)
        assert len(result.violations) == 1
        assert "has str value" in result.violations[0].message

    def test_run_clock_regression(self, tmp_path):
        path = self._write(tmp_path, [
            '{"kind": "run_start", "t": 0.0, "policy": "baat"}',
            '{"kind": "day_start", "t": 120.0, "day_index": 0}',
            '{"kind": "day_start", "t": 60.0, "day_index": 0}',
        ])
        result = validate_trace(path)
        assert len(result.violations) == 1
        assert "run clock went backwards" in result.violations[0].message

    def test_run_start_resets_the_clock(self, tmp_path):
        path = self._write(tmp_path, [
            '{"kind": "run_start", "t": 0.0, "policy": "baat"}',
            '{"kind": "day_start", "t": 86400.0, "day_index": 1}',
            '{"kind": "run_start", "t": 0.0, "policy": "e-buff"}',
            '{"kind": "day_start", "t": 0.0, "day_index": 0}',
        ])
        result = validate_trace(path)
        assert result.ok
        assert result.n_runs == 2

    def test_unmatched_span_end(self, tmp_path):
        path = self._write(tmp_path, [
            '{"kind": "span_end", "t": 5.0, "span_id": 9, "span": "parked"}',
        ])
        result = validate_trace(path)
        assert "without a matching span_start" in result.violations[0].message

    def test_duplicate_span_id(self, tmp_path):
        start = '{"kind": "span_start", "t": 0.0, "eid": 3, "span_id": 3, "span": "parked"}'
        path = self._write(tmp_path, [start, start])
        result = validate_trace(path)
        assert "opened twice" in result.violations[0].message

    def test_open_spans_reported_not_violated(self, tmp_path):
        path = self._write(tmp_path, [
            '{"kind": "span_start", "t": 0.0, "eid": 3, "span_id": 3, '
            '"span": "deep_discharge", "node": "n0"}',
        ])
        result = validate_trace(path)
        assert result.ok
        assert result.open_spans == [(3, "deep_discharge", "n0")]

    def test_max_violations_truncates(self, tmp_path):
        path = self._write(tmp_path, ["garbage"] * 50)
        result = validate_trace(path, max_violations=5)
        assert len(result.violations) == 5

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            validate_trace(str(tmp_path / "absent.jsonl"))

    def test_reads_gzipped_trace(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.write('{"kind": "run_start", "t": 0.0, "policy": "baat"}\n')
        result = validate_trace(str(path))
        assert result.ok and result.n_runs == 1


# ----------------------------------------------------------------------
# Property: every registered event kind round-trips losslessly
# ----------------------------------------------------------------------
def _value_strategy(default):
    if isinstance(default, bool):
        return st.booleans()
    if isinstance(default, int):
        return st.integers(min_value=0, max_value=2**31)
    if isinstance(default, float):
        return st.floats(allow_nan=False, allow_infinity=False)
    return st.text(max_size=20)


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_every_event_kind_round_trips_losslessly(data):
    kind = data.draw(st.sampled_from(sorted(EVENT_TYPES)))
    cls = EVENT_TYPES[kind]
    kwargs = {
        f.name: data.draw(_value_strategy(f.default), label=f.name)
        for f in fields(cls)
        if f.name != "kind"
    }
    event = cls(**kwargs)
    restored = event_from_dict(json.loads(event.to_json()))
    assert restored == event
    assert type(restored) is cls


# ----------------------------------------------------------------------
# Span context under campaign fan-out
# ----------------------------------------------------------------------
class TestCampaignSpanPropagation:
    def _specs(self, tiny_scenario, one_sunny_day, inline_only=True):
        specs = [
            RunSpec(
                scenario=tiny_scenario,
                trace=one_sunny_day,
                policy_factory=lambda: make_policy("e-buff"),
                label="inline-cell",
            ),
        ]
        if not inline_only:
            specs.append(
                RunSpec(
                    scenario=tiny_scenario,
                    trace=one_sunny_day,
                    policy="baat",
                    label="pool-cell",
                )
            )
        return specs

    def test_inline_cell_events_carry_the_cell_span(
        self, tiny_scenario, one_sunny_day, tmp_path
    ):
        path = str(tmp_path / "campaign.jsonl")
        enable_observability(path)
        try:
            run_campaign(
                self._specs(tiny_scenario, one_sunny_day),
                n_workers=1,
                cache=None,
            )
        finally:
            disable_observability()
        index = ProvenanceIndex.from_trace(path)
        cells = [
            r for r in index.spans.values() if r.name == "campaign_cell"
        ]
        assert len(cells) == 1
        cell = cells[0]
        assert cell.node == "inline-cell"
        assert cell.scope == "campaign"
        assert not cell.open, "the cell span must close when the cell ends"
        run_starts = [
            e for e in index.events.values() if e.kind == "run_start"
        ]
        assert run_starts
        assert all(e.span_id == cell.span_id for e in run_starts)
        assert validate_trace(path).ok

    def test_process_fanout_keeps_the_trace_coherent(
        self, tiny_scenario, one_sunny_day, tmp_path
    ):
        path = str(tmp_path / "fanout.jsonl")
        enable_observability(path)
        try:
            report = run_campaign(
                self._specs(tiny_scenario, one_sunny_day, inline_only=False),
                n_workers=2,
                cache=None,
            )
        finally:
            disable_observability()
        assert not report.failures
        result = validate_trace(path)
        assert result.ok, [str(v) for v in result.violations]
        index = ProvenanceIndex.from_trace(path)
        # Worker fan-in: the pool cell's events are captured in the
        # worker, shipped back, and replayed inside its campaign_cell
        # span — both cells now appear as first-class spans with their
        # engine events attributed.
        cell_spans = {
            r.node: r
            for r in index.spans.values()
            if r.name == "campaign_cell"
        }
        assert set(cell_spans) == {"inline-cell", "pool-cell"}
        assert all(not r.open for r in cell_spans.values())
        run_starts = [
            e for e in index.events.values() if e.kind == "run_start"
        ]
        assert len(run_starts) == 2
        assert {e.span_id for e in run_starts} == {
            r.span_id for r in cell_spans.values()
        }
        assert index.event_counts.get("cell_finish", 0) == 2
