"""Integration tests: the paper's qualitative claims hold end-to-end.

These run full multi-policy simulations on matched weather and assert the
*direction* of each headline result — who ages slower, who keeps batteries
out of deep discharge, who pays which performance penalty — without
pinning environment-sensitive absolute numbers.
"""

import pytest

from repro.core.policies.factory import make_policy
from repro.sim.engine import run_policy_on_trace
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

POLICIES = ("e-buff", "baat-s", "baat-h", "baat")


@pytest.fixture(scope="module")
def stressed_results():
    """All four schemes over two cloudy days with old batteries — the
    paper's worst-case comparison cell."""
    scenario = Scenario(dt_s=120.0, initial_fade=0.10)
    trace = scenario.trace_generator().days([DayClass.CLOUDY] * 2)
    return {
        name: run_policy_on_trace(scenario, make_policy(name), trace)
        for name in POLICIES
    }


@pytest.fixture(scope="module")
def rainy_results():
    scenario = Scenario(dt_s=120.0, initial_fade=0.10)
    trace = scenario.trace_generator().days([DayClass.RAINY] * 2)
    return {
        name: run_policy_on_trace(scenario, make_policy(name), trace)
        for name in POLICIES
    }


class TestAgingClaims:
    def test_baat_slows_worst_node_aging(self, stressed_results):
        """Fig. 13/14 headline: BAAT's worst battery ages markedly slower
        than e-Buff's (paper: -38 % aging speed, +69 % lifetime)."""
        ebuff = stressed_results["e-buff"].worst_damage_per_day()
        baat = stressed_results["baat"].worst_damage_per_day()
        assert baat < 0.85 * ebuff

    def test_all_baat_variants_beat_ebuff_on_mean_aging(self, stressed_results):
        ebuff = stressed_results["e-buff"].mean_damage_per_day()
        for name in ("baat-s", "baat"):
            assert stressed_results[name].mean_damage_per_day() <= ebuff * 1.001

    def test_baat_reduces_worst_node_ah_throughput(self, stressed_results):
        """Paper: e-Buff cycles 1.3-2.1x the Ah of BAAT on the worst node."""
        ebuff = stressed_results["e-buff"].worst_node_by_throughput_ah()
        baat = stressed_results["baat"].worst_node_by_throughput_ah()
        assert ebuff.discharged_ah > baat.discharged_ah

    def test_slowdown_beats_hiding_on_aging(self, stressed_results):
        """Paper section VI-C: aging slowdown has a larger lifetime impact
        than aging balancing."""
        assert (
            stressed_results["baat-s"].worst_damage_per_day()
            < stressed_results["baat-h"].worst_damage_per_day()
        )


class TestAvailabilityClaims:
    def test_baat_reduces_low_soc_exposure(self, stressed_results):
        """Fig. 18: BAAT cuts the worst node's low-SoC residence."""
        assert (
            stressed_results["baat"].worst_low_soc_fraction()
            < stressed_results["e-buff"].worst_low_soc_fraction()
        )

    def test_baat_reduces_downtime_under_stress(self, rainy_results):
        assert (
            rainy_results["baat"].total_downtime_s
            < rainy_results["e-buff"].total_downtime_s
        )

    def test_ebuff_suffers_cutoff_downtime_on_rainy_days(self, rainy_results):
        """Fig. 20 narrative: when solar is inadequate e-Buff servers hit
        battery cut-off and go down."""
        assert rainy_results["e-buff"].total_downtime_s > 3600.0


class TestPerformanceClaims:
    def test_baat_wins_throughput_when_heavily_stressed(self, rainy_results):
        """Fig. 20: coordinated BAAT out-computes aggressive e-Buff under
        heavy supply stress (paper: +28 % worst case)."""
        assert (
            rainy_results["baat"].throughput
            > rainy_results["e-buff"].throughput * 0.98
        )

    def test_baat_s_pays_a_dvfs_penalty(self, stressed_results):
        """Paper: BAAT-s's power capping degrades throughput."""
        assert (
            stressed_results["baat-s"].throughput
            < stressed_results["e-buff"].throughput
        )
        assert stressed_results["baat-s"].dvfs_transitions > 0

    def test_baat_h_migrates_and_pays_overhead(self, stressed_results):
        """Paper: BAAT-h's crude migrations are frequent and costly."""
        assert stressed_results["baat-h"].migrations > 0
        assert (
            stressed_results["baat-h"].throughput
            < stressed_results["e-buff"].throughput
        )

    def test_ebuff_never_acts(self, stressed_results):
        r = stressed_results["e-buff"]
        assert r.migrations == 0
        assert r.dvfs_transitions == 0


class TestSunnyDayEquivalence:
    def test_policies_converge_when_solar_is_abundant(self):
        """With ample sun, batteries barely cycle and all schemes look
        alike — the Fig. 14 high-sunshine limit."""
        scenario = Scenario(dt_s=120.0)
        trace = scenario.trace_generator().day(DayClass.SUNNY)
        results = {
            name: run_policy_on_trace(scenario, make_policy(name), trace)
            for name in ("e-buff", "baat")
        }
        ebuff = results["e-buff"]
        baat = results["baat"]
        assert baat.throughput == pytest.approx(ebuff.throughput, rel=0.05)
        assert baat.worst_damage_per_day() == pytest.approx(
            ebuff.worst_damage_per_day(), rel=0.25
        )
