"""Unit tests for cluster placement and migration."""

import pytest

from repro.datacenter.cluster import Cluster
from repro.datacenter.node import Node
from repro.datacenter.vm import VM
from repro.datacenter.workloads import PAPER_WORKLOADS, WorkloadProfile
from repro.errors import ConfigurationError, MigrationError, SchedulingError


def make_cluster(n=3):
    return Cluster([Node.build(f"node{i}") for i in range(n)])


def vm_with_util(name, util):
    profile = WorkloadProfile(
        name=f"wl-{name}", mean_util=util, burst_util=0.0, period_s=3600.0,
        burstiness=0.0,
    )
    return VM(name=name, workload=profile)


class TestConstruction:
    def test_requires_nodes(self):
        with pytest.raises(ConfigurationError):
            Cluster([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            Cluster([Node.build("a"), Node.build("a")])

    def test_lookup(self):
        cluster = make_cluster()
        assert cluster.node("node1").name == "node1"
        with pytest.raises(ConfigurationError):
            cluster.node("ghost")


class TestPlacement:
    def test_place_and_lookup(self):
        cluster = make_cluster()
        vm = vm_with_util("a", 0.5)
        cluster.place(vm, "node0")
        assert vm.host == "node0"
        assert cluster.vm("a") is vm
        assert cluster.vms_on("node0") == [vm]

    def test_double_place_rejected(self):
        cluster = make_cluster()
        vm = vm_with_util("a", 0.5)
        cluster.place(vm, "node0")
        with pytest.raises(SchedulingError):
            cluster.place(vm, "node1")

    def test_headroom_enforced(self):
        cluster = make_cluster()
        cluster.place(vm_with_util("a", 0.7), "node0")
        with pytest.raises(SchedulingError):
            cluster.place(vm_with_util("b", 0.6), "node0")


class TestMigration:
    def test_moves_between_nodes(self):
        cluster = make_cluster()
        vm = vm_with_util("a", 0.5)
        cluster.place(vm, "node0")
        cluster.migrate("a", "node1")
        assert vm.host == "node1"
        assert cluster.vms_on("node0") == []
        assert cluster.vms_on("node1") == [vm]

    def test_migration_allows_overcommit(self):
        """Migration packs beyond the placement limit (time-sharing)."""
        cluster = make_cluster()
        cluster.place(vm_with_util("a", 0.9), "node0")
        vm = vm_with_util("b", 0.6)
        cluster.place(vm, "node1")
        cluster.migrate("b", "node0")  # 1.5 total, under the 1.6 limit
        assert vm.host == "node0"

    def test_migration_overcommit_limit(self):
        cluster = make_cluster()
        cluster.place(vm_with_util("a", 0.9), "node0")
        cluster.place(vm_with_util("b", 0.9), "node1")
        with pytest.raises(MigrationError):
            cluster.migrate("b", "node0")  # 1.8 exceeds 1.6

    def test_migration_to_down_node_rejected(self):
        cluster = make_cluster()
        vm = vm_with_util("a", 0.5)
        cluster.place(vm, "node0")
        cluster.node("node1").server.brownout()
        with pytest.raises(MigrationError):
            cluster.migrate("a", "node1")

    def test_migration_wakes_parked_destination(self):
        cluster = make_cluster()
        vm = vm_with_util("a", 0.5)
        cluster.place(vm, "node0")
        cluster.node("node1").server.policy_off = True
        cluster.migrate("a", "node1")
        assert not cluster.node("node1").server.policy_off

    def test_can_migrate_mirror(self):
        cluster = make_cluster()
        vm = vm_with_util("a", 0.5)
        cluster.place(vm, "node0")
        assert cluster.can_migrate("a", "node1")
        assert not cluster.can_migrate("a", "node0")  # same host
        vm.pinned = True
        assert not cluster.can_migrate("a", "node1")


class TestAggregates:
    def test_worst_battery_node(self):
        cluster = make_cluster()
        cluster.node("node2").battery.aging.state.damage["active_mass"] = 0.1
        assert cluster.worst_battery_node().name == "node2"

    def test_total_progress(self):
        cluster = make_cluster()
        vm = vm_with_util("a", 0.5)
        cluster.place(vm, "node0")
        vm.progress = 123.0
        assert cluster.total_progress() == 123.0

    def test_up_nodes(self):
        cluster = make_cluster()
        cluster.node("node1").server.brownout()
        assert [n.name for n in cluster.up_nodes()] == ["node0", "node2"]
