"""Unit tests for availability statistics (Figs. 18-19 plumbing)."""

import pytest

from repro.availability.soc_stats import (
    availability_improvement,
    low_soc_stats,
    soc_distribution_table,
)
from repro.core.policies.factory import make_policy
from repro.errors import ConfigurationError
from repro.sim.engine import run_policy_on_trace
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass


@pytest.fixture(scope="module")
def stressed_results():
    from repro.datacenter.workloads import PAPER_WORKLOADS

    workloads = tuple(
        PAPER_WORKLOADS[name]
        for name in ("web_serving", "data_analytics", "word_count")
    )
    scenario = Scenario(
        n_nodes=3,
        dt_s=300.0,
        manufacturing_variation=False,
        initial_fade=0.08,
        workloads=workloads,
    )
    trace = scenario.trace_generator().day(DayClass.RAINY)
    return {
        name: run_policy_on_trace(scenario, make_policy(name), trace)
        for name in ("e-buff", "baat")
    }


class TestLowSocStats:
    def test_fields(self, stressed_results):
        stats = low_soc_stats(stressed_results["e-buff"])
        assert stats.policy_name == "e-buff"
        assert 0.0 <= stats.mean_low_soc_fraction <= stats.worst_low_soc_fraction <= 1.0
        assert stats.availability_proxy == pytest.approx(
            1.0 - stats.worst_low_soc_fraction
        )

    def test_baat_reduces_low_soc_exposure(self, stressed_results):
        ebuff = low_soc_stats(stressed_results["e-buff"])
        baat = low_soc_stats(stressed_results["baat"])
        assert baat.worst_low_soc_fraction <= ebuff.worst_low_soc_fraction

    def test_improvement_is_positive(self, stressed_results):
        gain = availability_improvement(
            stressed_results["e-buff"], stressed_results["baat"]
        )
        assert gain >= 0.0


class TestDistributionTable:
    def test_renders_all_schemes_and_bins(self, stressed_results):
        table = soc_distribution_table(list(stressed_results.values()))
        assert "e-buff" in table
        assert "baat" in table
        assert "SoC7" in table

    def test_unknown_node_rejected(self, stressed_results):
        with pytest.raises(ConfigurationError):
            soc_distribution_table([stressed_results["e-buff"]], node="ghost")

    def test_specific_node(self, stressed_results):
        table = soc_distribution_table([stressed_results["e-buff"]], node="node0")
        assert "e-buff" in table
