"""Unit tests for the event-based replacement simulator."""

import pytest

from repro.battery.params import BatteryParams
from repro.cost.replacement import ReplacementSimulator
from repro.errors import ConfigurationError


@pytest.fixture
def simulator():
    return ReplacementSimulator(BatteryParams(), n_batteries=6, seed=7)


class TestSchedules:
    def test_faster_damage_means_more_replacements(self, simulator):
        slow = simulator.simulate(0.0005, horizon_days=1460.0)
        fast = simulator.simulate(0.0020, horizon_days=1460.0)
        assert fast.replacements > slow.replacements
        assert fast.annual_cost_usd > slow.annual_cost_usd

    def test_event_days_within_horizon(self, simulator):
        schedule = simulator.simulate(0.002, horizon_days=1000.0)
        assert all(0.0 < e.day <= 1000.0 for e in schedule.events)

    def test_every_unit_replaced_eventually(self, simulator):
        schedule = simulator.simulate(0.002, horizon_days=1460.0)
        assert {e.unit for e in schedule.events} == set(range(6))

    def test_cost_accounting(self, simulator):
        schedule = simulator.simulate(0.002, horizon_days=1460.0)
        assert schedule.total_cost_usd == pytest.approx(
            schedule.replacements * schedule.unit_cost_usd
        )

    def test_annual_cost_matches_straight_line_asymptotically(self, simulator):
        """With no spread, the event-based annual cost converges to the
        Fig.-16 straight-line depreciation."""
        rate = 0.002
        schedule = simulator.simulate(rate, horizon_days=36500.0, damage_spread=0.0)
        lifetime_days = 0.20 / rate
        straight_line = 6 * schedule.unit_cost_usd * 365.0 / lifetime_days
        assert schedule.annual_cost_usd == pytest.approx(straight_line, rel=0.05)


class TestIrregularity:
    def test_spread_creates_irregular_maintenance(self, simulator):
        regular = simulator.simulate(0.002, horizon_days=3650.0, damage_spread=0.0)
        irregular = simulator.simulate(0.002, horizon_days=3650.0, damage_spread=0.3)
        assert irregular.irregularity() > regular.irregularity()

    def test_few_events_report_zero(self, simulator):
        schedule = simulator.simulate(0.0001, horizon_days=100.0)
        assert schedule.irregularity() == 0.0


class TestCompare:
    def test_policy_comparison(self, simulator):
        schedules = simulator.compare({"e-buff": 0.0024, "baat": 0.0014})
        assert schedules["baat"].annual_cost_usd < schedules["e-buff"].annual_cost_usd

    def test_validation(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.simulate(0.0, horizon_days=100.0)
        with pytest.raises(ConfigurationError):
            simulator.simulate(0.001, horizon_days=0.0)
        with pytest.raises(ConfigurationError):
            ReplacementSimulator(BatteryParams(), n_batteries=0)
