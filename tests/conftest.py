"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryUnit
from repro.campaign import configure_cache, reset_cache_config
from repro.datacenter.server import Server, ServerParams
from repro.datacenter.vm import VM
from repro.datacenter.workloads import PAPER_WORKLOADS
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass


@pytest.fixture(autouse=True, scope="session")
def _hermetic_campaign_cache(tmp_path_factory):
    """Point the campaign result cache at a per-session temp directory.

    Keeps the suite from reading or writing the user's real cache while
    still exercising the disk-memoization path end to end.
    """
    configure_cache(directory=tmp_path_factory.mktemp("campaign-cache"))
    yield
    reset_cache_config()


@pytest.fixture
def params() -> BatteryParams:
    """The paper's 12 V / 35 Ah block."""
    return BatteryParams()


@pytest.fixture
def battery(params) -> BatteryUnit:
    """A fresh, fully charged battery."""
    return BatteryUnit(params=params, name="test-battery")


@pytest.fixture
def server() -> Server:
    """A default server."""
    return Server(params=ServerParams(), name="test-server")


@pytest.fixture
def vm() -> VM:
    """A VM running the web-serving profile."""
    return VM(name="test-vm", workload=PAPER_WORKLOADS["web_serving"])


@pytest.fixture
def tiny_scenario() -> Scenario:
    """A small, fast scenario: 3 nodes hosting 6 light-to-medium VMs,
    coarse step, no manufacturing variation."""
    workloads = tuple(
        PAPER_WORKLOADS[name]
        for name in (
            "web_serving",
            "data_analytics",
            "word_count",
            "nutch_indexing",
        )
    )
    return Scenario(
        n_nodes=3, dt_s=300.0, manufacturing_variation=False, workloads=workloads
    )


@pytest.fixture
def one_sunny_day(tiny_scenario):
    """A single sunny-day trace matching the tiny scenario."""
    return tiny_scenario.trace_generator().day(DayClass.SUNNY)


@pytest.fixture
def one_cloudy_day(tiny_scenario):
    """A single cloudy-day trace matching the tiny scenario."""
    return tiny_scenario.trace_generator().day(DayClass.CLOUDY)
