"""Failure-injection tests: the system degrades gracefully, not fatally.

Uses the engine's single-step interface to inject mid-run events — a
battery suddenly losing capacity (cell short), a battery dying outright,
a server crash — and asserts the cluster keeps serving and the policies
adapt rather than wedging.
"""

import pytest

from repro.core.policies.factory import make_policy
from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.solar.weather import DayClass


def run_with_event(scenario, policy_name, trace, event_step, event):
    """Run a simulation, applying ``event(sim)`` at ``event_step``."""
    sim = Simulation(scenario, make_policy(policy_name), trace)
    while sim.steps_done < sim.steps_total:
        if sim.steps_done == event_step:
            event(sim)
        sim.step_once()
    return sim, sim._collect()


@pytest.fixture
def midday_step(tiny_scenario):
    return int(12 * 3600 / tiny_scenario.dt_s)


class TestBatteryFailures:
    def test_sudden_capacity_loss_is_survivable(
        self, tiny_scenario, one_cloudy_day, midday_step
    ):
        """A cell short halves one battery's capacity mid-day; the run
        completes and the cluster keeps computing."""

        def cell_short(sim):
            battery = sim.cluster.node("node0").battery
            battery.aging.state.damage["active_mass"] = 0.45

        sim, result = run_with_event(
            tiny_scenario, "baat", one_cloudy_day, midday_step, cell_short
        )
        assert result.throughput > 0.0
        assert sim.cluster.node("node0").battery.is_end_of_life

    def test_baat_shifts_load_away_from_failed_battery(
        self, tiny_scenario, one_cloudy_day, midday_step
    ):
        """After a battery failure, BAAT's aging-aware machinery should
        not route *more* charge through the failed unit than e-Buff does."""

        def kill_battery(sim):
            battery = sim.cluster.node("node0").battery
            battery.aging.state.damage["sulphation"] = 0.60

        outcomes = {}
        for policy in ("e-buff", "baat"):
            _sim, result = run_with_event(
                tiny_scenario, policy, one_cloudy_day, midday_step, kill_battery
            )
            node0 = next(n for n in result.nodes if n.name == "node0")
            outcomes[policy] = node0.discharged_ah
        assert outcomes["baat"] <= outcomes["e-buff"] + 1.0

    def test_dead_battery_still_advances_time(
        self, tiny_scenario, one_cloudy_day, midday_step
    ):
        def kill(sim):
            sim.cluster.node("node1").battery.aging.state.damage["corrosion"] = 0.9

        sim, _result = run_with_event(
            tiny_scenario, "e-buff", one_cloudy_day, midday_step, kill
        )
        battery = sim.cluster.node("node1").battery
        assert battery.time_s == pytest.approx(one_cloudy_day.duration_s)


class TestServerFailures:
    def test_server_crash_checkpoint_and_recovery(
        self, tiny_scenario, one_sunny_day, midday_step
    ):
        """A crashed server checkpoints its VMs and reboots once power
        allows; on a sunny day it must be back up by end of window."""

        def crash(sim):
            sim.cluster.node("node2").server.brownout()

        sim, result = run_with_event(
            tiny_scenario, "e-buff", one_sunny_day, midday_step, crash
        )
        node2 = sim.cluster.node("node2")
        assert node2.server.downtime_s > 0.0
        assert result.throughput > 0.0

    def test_all_servers_crashing_is_not_fatal(
        self, tiny_scenario, one_sunny_day, midday_step
    ):
        def crash_all(sim):
            for node in sim.cluster:
                node.server.brownout()

        _sim, result = run_with_event(
            tiny_scenario, "baat", one_sunny_day, midday_step, crash_all
        )
        assert result.total_downtime_s > 0.0
        assert result.throughput > 0.0


class TestEngineStepInterface:
    def test_step_past_end_raises(self, tiny_scenario, one_sunny_day):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        sim.run()
        with pytest.raises(SimulationError):
            sim.step_once()

    def test_partial_then_run_completes(self, tiny_scenario, one_sunny_day):
        sim = Simulation(tiny_scenario, make_policy("e-buff"), one_sunny_day)
        for _ in range(10):
            sim.step_once()
        result = sim.run()
        assert result.duration_s == pytest.approx(one_sunny_day.duration_s)

    def test_stepwise_equals_batch(self, tiny_scenario, one_cloudy_day):
        batch = Simulation(tiny_scenario, make_policy("baat"), one_cloudy_day).run()
        stepped_sim = Simulation(tiny_scenario, make_policy("baat"), one_cloudy_day)
        while stepped_sim.steps_done < stepped_sim.steps_total:
            stepped_sim.step_once()
        stepped = stepped_sim._collect()
        assert stepped.throughput == pytest.approx(batch.throughput)
        assert stepped.worst_damage_per_day() == pytest.approx(
            batch.worst_damage_per_day()
        )
