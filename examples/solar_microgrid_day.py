#!/usr/bin/env python3
"""Operating a solar micro-datacenter through a volatile day.

Walks one rainy day hour by hour with the full BAAT controller active,
showing the control story of paper Figs. 8-9 end to end:

- the solar trace and the cluster's demand;
- per-node battery SoC evolution and the five aging metrics
  (NAT / CF / PC / DDT / DR) the controller computes from its power table;
- the actions BAAT takes — weighted placement, DVFS throttling, VM
  migration, consolidation parking — as supply tightens.

Run:  python examples/solar_microgrid_day.py
"""

import numpy as np

from repro import Scenario, Simulation, make_policy
from repro.analysis.reporting import format_table
from repro.solar import DayClass
from repro.units import SECONDS_PER_HOUR


def main() -> None:
    scenario = Scenario(dt_s=60.0)
    trace = scenario.trace_generator().day(DayClass.RAINY)
    policy = make_policy("baat")
    sim = Simulation(scenario, policy, trace, record_series=True)
    result = sim.run()

    print(f"Rainy day: solar delivered {trace.energy_wh() / 1000:.2f} kWh")
    print(f"Cluster throughput: {result.throughput:,.0f} progress units")
    print(
        f"Actions: {policy.monitor.migrations} migrations, "
        f"{policy.monitor.throttles} DVFS throttles, "
        f"{policy.monitor.parks} parks, "
        f"{policy.consolidations} consolidation passes\n"
    )

    # Hourly snapshot of the fleet through the operating window.
    steps_per_hour = int(SECONDS_PER_HOUR / scenario.dt_s)
    recorder = sim.recorder
    rows = []
    for hour in range(8, 19):
        i = hour * steps_per_hour
        solar = recorder.solar_w[i]
        demand = recorder.demand_w[i]
        socs = [recorder.soc_series[n.name][i] for n in sim.cluster]
        rows.append(
            (
                f"{hour:02d}:00",
                solar,
                demand,
                float(np.mean(socs)),
                float(np.min(socs)),
                sum(1 for n in sim.cluster if not n.server.policy_off),
            )
        )
    print(
        format_table(
            ("time", "solar W", "demand W", "mean SoC", "min SoC", "active servers"),
            rows,
            title="Hourly fleet state (operating window)",
            float_fmt="{:.2f}",
        )
    )

    # The five aging metrics per node, over the whole day.
    print()
    metric_rows = []
    for node in result.nodes:
        m = node.metrics
        cf = min(m.cf, 99.0)
        metric_rows.append(
            (node.name, m.discharged_ah, m.nat * 1000.0, cf, m.pc, m.ddt, m.dr_peak)
        )
    print(
        format_table(
            ("node", "Ah out", "NAT x1e-3", "CF", "PC", "DDT", "peak DR"),
            metric_rows,
            title="Aging metrics per battery node (Eqs. 1-5)",
        )
    )


if __name__ == "__main__":
    main()
