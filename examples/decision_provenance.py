#!/usr/bin/env python3
"""Causal decision provenance: why did the controller do that?

BAAT's Fig.-9 monitor migrates VMs, caps DVFS, and parks servers in
response to deep-discharge stress. This example instruments one hard
(rainy, aged-fleet) day and then *explains* the control decisions:

1. run BAAT with a :class:`~repro.obs.provenance.ProvenanceIndex` on the
   event bus while also streaming the trace to a rotated, gzipped JSONL
   file (the month-scale operator configuration);
2. walk each migration / DVFS cap back through its causal chain —
   action ← alert ← deep-discharge span ← SoC crossing — and print the
   chains, exactly what ``repro explain`` does;
3. aggregate: which trigger (DDT window breach vs DR reserve exhaustion
   vs consolidation plan) accounts for which share of the actions, and
   how long each battery spent inside deep-discharge / DVFS-capped /
   parked spans;
4. prove the trace round-trips: replaying the JSONL file yields *the
   same* chains the live index saw (the property ``repro trace
   validate`` + CI rely on).

Run:  python examples/decision_provenance.py  (takes ~10 s)
"""

from repro import Scenario, Simulation, make_policy
from repro.analysis.reporting import format_table
from repro.obs import BUS, disable_observability, enable_observability
from repro.obs.provenance import ProvenanceIndex, validate_trace
from repro.solar.weather import DayClass

TRACE_PATH = "provenance-trace.jsonl"


def run_traced_day():
    """One rainy day on an aged fleet, indexed live + streamed to disk."""
    scenario = Scenario(dt_s=120.0, initial_fade=0.12, seed=7)
    trace = scenario.trace_generator().days([DayClass.RAINY, DayClass.CLOUDY])

    live = ProvenanceIndex()
    # Rotation + gzip: the sink rolls segments (~256 KiB uncompressed)
    # so month-scale traces stay bounded; every reader below follows the
    # segment chain transparently.
    enable_observability(TRACE_PATH, compress=True, rotate_bytes=256 * 1024)
    BUS.add_sink(live)
    try:
        Simulation(scenario, make_policy("baat"), trace).run()
    finally:
        BUS.remove_sink(live)
        disable_observability()
    return live


def main() -> None:
    live = run_traced_day()

    # 1. Causal chains: each control action explained back to its root.
    print("=== why did each control action fire? (first 6 chains) ===\n")
    chains = live.action_chains(kinds=("vm_migrated", "dvfs_cap", "park"))
    for chain in chains[:6]:
        for line in live.render_chain(chain):
            print(line)
        print()

    # 2. Aggregate attribution: migrations DDT- vs DR- vs plan-driven.
    rows = [
        (kind, trigger, count)
        for kind, per_kind in sorted(live.action_summary().items())
        for trigger, count in sorted(per_kind.items(), key=lambda kv: -kv[1])
    ]
    print(format_table(("action", "triggered by", "count"), rows,
                       title="action attribution"))

    # 3. Time-in-span: how long batteries spent in each managed state.
    span_rows = [
        (name, int(s["count"]), int(s.get("open", 0)), s["total"] / 3600.0)
        for name, s in live.span_stats().items()
    ]
    print()
    print(format_table(("span", "closed", "open", "total h"), span_rows,
                       title="time in span", float_fmt="{:.2f}"))

    # 4. The trace round-trips: replay == live, and it validates.
    replayed = ProvenanceIndex.from_trace(TRACE_PATH)
    identical = all(
        [(e.kind, e.eid) for e in live.chain(eid)]
        == [(e.kind, e.eid) for e in replayed.chain(eid)]
        for eid in live.actions
    )
    validation = validate_trace(TRACE_PATH)
    print(
        f"\nreplay check : {len(live.actions)} action chain(s) "
        f"{'identical' if identical else 'DIVERGED'} live vs JSONL"
        f"\nvalidation   : {validation.summary()}"
    )


if __name__ == "__main__":
    main()
