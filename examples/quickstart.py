#!/usr/bin/env python3
"""Quickstart: compare e-Buff and BAAT on one cloudy day.

Builds the paper's prototype scenario — six servers, each with a 12 V /
35 Ah lead-acid battery, fed by an 8 kWh-per-sunny-day solar line — runs
the aging-blind e-Buff baseline and the full BAAT framework over the
*identical* cloudy-day solar trace, and prints the comparison the paper
makes throughout section VI: throughput, worst-node battery aging, deep
discharge exposure, and downtime.

Run:  python examples/quickstart.py
"""

from repro import Scenario, make_policy, run_policy_on_trace
from repro.analysis.reporting import format_table, percent_change
from repro.solar import DayClass


def main() -> None:
    # The paper's prototype, with batteries pre-aged half-way ("old").
    scenario = Scenario(initial_fade=0.10)
    trace = scenario.trace_generator().day(DayClass.CLOUDY)
    print(
        f"Scenario: {scenario.n_nodes} nodes, "
        f"{scenario.battery.capacity_ah:.0f} Ah batteries, "
        f"solar {trace.energy_wh() / 1000:.1f} kWh today (cloudy)\n"
    )

    rows = []
    results = {}
    for name in ("e-buff", "baat"):
        result = run_policy_on_trace(scenario, make_policy(name), trace)
        results[name] = result
        worst = result.worst_node_by_throughput_ah()
        rows.append(
            (
                name,
                result.throughput_per_day(),
                worst.discharged_ah,
                result.worst_damage_per_day() * 1000.0,
                result.worst_low_soc_fraction() * 24.0,
                result.total_downtime_s / 3600.0,
            )
        )

    print(
        format_table(
            (
                "scheme",
                "throughput/day",
                "worst-node Ah",
                "worst fade/day x1e-3",
                "low-SoC h/day",
                "downtime h",
            ),
            rows,
            title="One cloudy day, old batteries",
        )
    )

    aging_cut = -percent_change(
        results["baat"].worst_damage_per_day(),
        results["e-buff"].worst_damage_per_day(),
    )
    print(
        f"\nBAAT slows the worst battery's aging by {aging_cut:.0f}% on this day"
        " (paper reports a 38% worst-case aging-speed cut and +69% lifetime)."
    )


if __name__ == "__main__":
    main()
