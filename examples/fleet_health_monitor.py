#!/usr/bin/env python3
"""Fleet health monitoring: online lifetime prediction and architecture
choice.

Two operator questions this example answers with the library:

1. *When will each battery die?* — runs a two-week mixed-weather campaign
   and feeds each battery's live logs to the blended lifetime predictor
   (constant-Ah-throughput + damage extrapolation), printing a per-node
   health dashboard like the prototype's LabVIEW display.
2. *Per-server batteries or a shared rack pool?* — repeats the campaign
   under the Open-Rack shared-pool architecture and compares aging spread
   (the paper's Fig. 7 / Table 1 architecture trade-off).

Run:  python examples/fleet_health_monitor.py  (takes ~30 s)
"""

from dataclasses import replace

from repro import Scenario, Simulation, make_policy
from repro.analysis.prediction import LifetimePredictor
from repro.analysis.reporting import format_table
from repro.solar.weather import WeatherModel
from repro.rng import spawn


def run_campaign(scenario, label):
    weather = WeatherModel(sunshine_fraction=0.45)
    classes = weather.sample_days(14, spawn(scenario.seed, "monitor/days"))
    trace = scenario.trace_generator().days(classes)
    sim = Simulation(scenario, make_policy("baat"), trace)
    result = sim.run()
    return sim, result, trace


def main() -> None:
    scenario = Scenario(dt_s=120.0)
    sim, result, trace = run_campaign(scenario, "per-server")
    predictor = LifetimePredictor()

    rows = []
    for node in sim.cluster:
        battery = node.battery
        prediction = predictor.predict(battery, elapsed_s=trace.duration_s)
        m = node.tracker.lifetime()
        rows.append(
            (
                node.name,
                battery.capacity_fade * 100.0,
                battery.soc,
                m.nat * 1000.0,
                prediction.by_throughput_days,
                prediction.by_damage_days,
                prediction.remaining_days,
                prediction.agreement,
            )
        )
    print(
        format_table(
            (
                "node",
                "fade %",
                "SoC",
                "NAT x1e-3",
                "Tput model (d)",
                "damage model (d)",
                "blended (d)",
                "agreement",
            ),
            rows,
            title="Battery health dashboard after a 2-week campaign (BAAT)",
            float_fmt="{:.2f}",
        )
    )

    # Architecture comparison.
    rack_sim, rack_result, _ = run_campaign(
        replace(scenario, architecture="rack-pool"), "rack-pool"
    )

    def spread(result):
        fades = [n.fade_added for n in result.nodes]
        return (max(fades) - min(fades)) / max(max(fades), 1e-12)

    print(
        "\nAging spread across batteries:"
        f"\n  per-server : {spread(result):.2f}"
        f"\n  rack-pool  : {spread(rack_result):.2f}"
        "\nA shared pool evens wear in hardware; on the per-server"
        " architecture BAAT's hiding scheduler does the same job in"
        " software (paper Fig. 7 / Table 1)."
    )


if __name__ == "__main__":
    main()
