#!/usr/bin/env python3
"""Fleet health monitoring with the obs-layer health model.

Two operator questions this example answers with the library:

1. *How is each battery aging, and why?* — runs a two-week mixed-weather
   campaign with a :class:`~repro.obs.health.FleetHealthModel` attached
   to the event bus. The model decomposes every battery's weighted aging
   score (Eq. 6) into its five constituent metrics, tracks aging speed
   against the fleet median, projects EOL, and re-derives alerts — the
   same report ``repro health`` prints, here driven live. The blended
   lifetime predictor columns cross-check the model's EOL projection.
2. *Per-server batteries or a shared rack pool?* — repeats the campaign
   under the Open-Rack shared-pool architecture and compares aging
   spread (the paper's Fig. 7 / Table 1 architecture trade-off).

Run:  python examples/fleet_health_monitor.py  (takes ~30 s)
"""

from dataclasses import replace

from repro import Scenario, Simulation, make_policy
from repro.analysis.prediction import LifetimePredictor
from repro.analysis.reporting import format_table
from repro.obs import BUS
from repro.obs.alerts import AlertEngine, default_rules
from repro.obs.health import FleetHealthModel
from repro.rng import spawn
from repro.solar.weather import WeatherModel


def run_monitored_campaign(scenario):
    """Run 14 mixed-weather days with a health model on the bus."""
    weather = WeatherModel(sunshine_fraction=0.45)
    classes = weather.sample_days(14, spawn(scenario.seed, "monitor/days"))
    trace = scenario.trace_generator().days(classes)

    engine = AlertEngine(default_rules())
    engine.enabled = True
    model = FleetHealthModel(alert_engine=engine)
    BUS.add_sink(model)
    try:
        sim = Simulation(scenario, make_policy("baat"), trace)
        result = sim.run()
    finally:
        BUS.remove_sink(model)
    model.finalize()
    return sim, result, trace, model


def main() -> None:
    scenario = Scenario(dt_s=120.0)
    sim, result, trace, model = run_monitored_campaign(scenario)

    # The operator view: per-battery metric attribution, score
    # decomposition, aging speed vs the fleet, EOL projection, alerts.
    print(model.report().to_text())

    # Cross-check the health model's EOL projection against the blended
    # lifetime predictor (throughput + damage extrapolation).
    predictor = LifetimePredictor()
    run = model.runs[0]
    rows = []
    for node in sim.cluster:
        prediction = predictor.predict(node.battery, elapsed_s=trace.duration_s)
        health = run.batteries[node.name]
        rows.append(
            (
                node.name,
                node.battery.capacity_fade * 100.0,
                health.eol_projection_days(),
                prediction.by_throughput_days,
                prediction.by_damage_days,
                prediction.remaining_days,
                prediction.agreement,
            )
        )
    print()
    print(
        format_table(
            (
                "node",
                "fade %",
                "health EOL (d)",
                "Tput model (d)",
                "damage model (d)",
                "blended (d)",
                "agreement",
            ),
            rows,
            title="EOL cross-check: health model vs lifetime predictor",
            float_fmt="{:.2f}",
        )
    )

    # Architecture comparison.
    _, rack_result, _, _ = run_monitored_campaign(
        replace(scenario, architecture="rack-pool")
    )

    def spread(result):
        fades = [n.fade_added for n in result.nodes]
        return (max(fades) - min(fades)) / max(max(fades), 1e-12)

    print(
        "\nAging spread across batteries:"
        f"\n  per-server : {spread(result):.2f}"
        f"\n  rack-pool  : {spread(rack_result):.2f}"
        "\nA shared pool evens wear in hardware; on the per-server"
        " architecture BAAT's hiding scheduler does the same job in"
        " software (paper Fig. 7 / Table 1)."
    )


if __name__ == "__main__":
    main()
