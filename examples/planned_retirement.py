#!/usr/bin/env python3
"""Planned aging: synchronising battery death with datacenter retirement.

Lead-acid batteries live 3-10 years; datacenters 10-15. When a facility's
decommission date is known, conserving batteries past it wastes
performance the fleet could have delivered. This example exercises the
paper's planned-aging scheme (section IV-D, Eq. 7):

1. compute the Eq.-7 DoD goal for several expected service lives and show
   how the goal deepens as the discard date approaches;
2. run BAAT-with-planning against plain BAAT and e-Buff on stressed days
   and report the productivity the plan unlocks (Fig. 22's story).

Run:  python examples/planned_retirement.py
"""

from repro import Scenario, make_policy, run_policy_on_trace
from repro.analysis.reporting import format_table, percent_change
from repro.battery.unit import BatteryUnit
from repro.core.planner import PlannedAgingManager
from repro.core.policies.planned import PlannedAgingPolicy
from repro.solar import DayClass
from repro.units import days


def show_dod_goals() -> None:
    """Eq. 7 on a live battery log, across planning horizons."""
    rows = []
    for service_days in (180.0, 365.0, 730.0, 1460.0, 2920.0):
        battery = BatteryUnit(name="demo")
        # Simulate a year of prior service: ~30 % of throughput consumed.
        battery.aging.state.discharged_ah = 0.3 * battery.params.lifetime_ah_throughput
        battery.rest(days(1))  # advance the clock nominally
        manager = PlannedAgingManager(service_life_days=service_days)
        goal = manager.current_dod_goal(battery)
        rows.append(
            (
                f"{service_days:.0f} d",
                manager.remaining_cycles(battery.time_s),
                goal,
                1.0 - goal,
            )
        )
    print(
        format_table(
            ("service life", "cycles left", "DoD goal (Eq. 7)", "low-SoC threshold"),
            rows,
            title="Planned DoD vs expected service life (battery 30% consumed)",
        )
    )


def compare_policies() -> None:
    """Throughput of e-Buff vs BAAT vs planned BAAT on stressed days."""
    scenario = Scenario(dt_s=120.0, initial_fade=0.10)
    trace = scenario.trace_generator().days([DayClass.RAINY, DayClass.CLOUDY])

    results = {}
    for label, policy in (
        ("e-buff", make_policy("e-buff")),
        ("baat", make_policy("baat")),
        ("baat-planned (1y left)", PlannedAgingPolicy(service_life_days=365.0)),
        ("baat-planned (6y left)", PlannedAgingPolicy(service_life_days=2190.0)),
    ):
        results[label] = run_policy_on_trace(scenario, policy, trace)

    base = results["e-buff"].throughput
    rows = [
        (
            label,
            r.throughput_per_day(),
            percent_change(r.throughput, base),
            r.worst_damage_per_day() * 1000.0,
        )
        for label, r in results.items()
    ]
    print()
    print(
        format_table(
            ("policy", "throughput/day", "vs e-buff %", "worst fade/day x1e-3"),
            rows,
            title="Two stressed days: productivity vs battery conservation",
        )
    )
    print(
        "\nA short remaining service life licenses deep discharge (more "
        "throughput, faster aging — deliberately); a long one conserves. "
        "That is the paper's Fig. 22 trade-off."
    )


if __name__ == "__main__":
    show_dod_goals()
    compare_policies()
