#!/usr/bin/env python3
"""Capacity planning: sizing batteries against server load.

A green-datacenter operator asks: *how hard can I load my batteries, and
what does each design point cost per year?* This example reproduces the
reasoning behind the paper's Figs. 15-17 on a small sweep:

1. sweep the server-to-battery ratio (W of peak server power per Ah of
   battery) and estimate battery lifetime under both e-Buff and BAAT;
2. convert lifetimes to annual depreciation cost;
3. show how the savings from BAAT's longer battery life translate into
   extra servers at constant TCO.

Run:  python examples/fleet_capacity_planning.py  (takes ~1 minute)
"""

from repro import Scenario
from repro.analysis.lifetime import lifetime_for_policies
from repro.analysis.reporting import format_table, improvement_percent
from repro.cost.depreciation import DepreciationModel
from repro.cost.expansion import ExpansionModel, expansion_at_constant_tco
from repro.cost.tco import TCOModel

SUNSHINE = 0.5  # a temperate location
RATIOS = (2.0, 4.3, 7.0, 10.0)  # W per Ah, the paper's Fig. 15 x-axis


def main() -> None:
    base = Scenario(dt_s=120.0)
    depreciation = DepreciationModel(base.battery, n_batteries=base.n_nodes)

    rows = []
    lifetimes = {}
    for ratio in RATIOS:
        scenario = base.with_server_to_battery_ratio(ratio)
        estimates = lifetime_for_policies(
            scenario, sunshine_fraction=SUNSHINE, n_days=4,
            policies=("e-buff", "baat"),
        )
        lifetimes[ratio] = {k: v.lifetime_days for k, v in estimates.items()}
        rows.append(
            (
                f"{ratio:.1f} W/Ah",
                lifetimes[ratio]["e-buff"],
                lifetimes[ratio]["baat"],
                improvement_percent(
                    lifetimes[ratio]["baat"], lifetimes[ratio]["e-buff"]
                ),
                depreciation.annual_cost_usd(lifetimes[ratio]["e-buff"]),
                depreciation.annual_cost_usd(lifetimes[ratio]["baat"]),
            )
        )
    print(
        format_table(
            (
                "ratio",
                "e-buff life (d)",
                "baat life (d)",
                "BAAT gain %",
                "e-buff $/yr",
                "baat $/yr",
            ),
            rows,
            title="Battery lifetime and annual depreciation vs loading",
            float_fmt="{:.1f}",
        )
    )

    # Constant-TCO expansion at the default design point (Fig. 17 logic).
    ratio0 = base.server_to_battery_ratio
    l0 = lifetimes[4.3]["baat"]
    l1 = lifetimes[10.0]["baat"]
    b = (l1 / l0) ** (1.0 / ((10.0 / 4.3) ** 0.5))  # crude response anchor

    def lifetime_of_ratio(r):
        return max(30.0, l0 * (4.3 / r) ** 0.7)

    model = ExpansionModel(
        tco=TCOModel(depreciation=depreciation),
        baseline_servers=base.n_nodes,
        lifetime_of_ratio=lifetime_of_ratio,
        baseline_lifetime_days=lifetimes[4.3]["e-buff"],
        baseline_ratio_w_per_ah=ratio0,
        solar_headroom_fraction=0.15,
    )
    expansion = expansion_at_constant_tco(model)
    print(
        f"\nAt constant TCO, BAAT's battery savings fund ~{expansion * 100:.0f}% "
        "more servers at this location (paper: up to 15% in sun-rich sites)."
    )
    print(
        "Note the diminishing returns: halving the load ratio buys far less "
        "than 2x battery life, so over-provisioning batteries is wasteful "
        "(the paper's Fig. 15 third finding)."
    )


if __name__ == "__main__":
    main()
