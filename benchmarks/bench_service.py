"""Bench: the campaign service must share work across concurrent clients.

``repro serve`` exists so that N users (or N CI shards) sweeping the
same grid cost one simulation per unique cell, not N. This bench starts
a real daemon subprocess with a private cache, then drives it through
three phases:

- **dedupe** — :data:`N_CLIENTS` clients submit the *same* campaign at
  the same instant (a barrier releases them together). The daemon must
  execute each unique cell exactly once; every other submission must be
  served by joining the in-flight execution (``dedupe_hits``) or, if it
  arrives after the holder finished, from the shared cache;
- **cache** — one client resubmits the campaign; every cell must come
  back as a cache hit;
- **throughput** — :data:`N_CLIENTS` clients submit campaigns with
  distinct seeds (no sharing possible), measuring end-to-end cells/s
  through the daemon including wire overhead.

Per-cell submit-to-result latency (client-side: submit write to
``cell_result`` line arrival) is quantiled across the dedupe and
throughput phases.

Acceptance (gated in CI like ``BENCH_engine.json``):

- ``ok_single_execution`` — the daemon executed exactly the unique cell
  count during the dedupe phase (the core sharing invariant);
- ``ok_shared`` — every follower submission was served by dedupe or
  cache, never by a duplicate execution;
- ``ok_dedupe`` — at least one submission joined an in-flight cell
  (the barrier makes this deterministic in practice);
- ``ok_cache_hits`` — the resubmission was served entirely from cache;
- ``ok_latency`` — p99 submit-to-result latency stays under
  :data:`MAX_P99_SUBMIT_S` (a sanity ceiling, not a tight bound).

Run standalone (``python benchmarks/bench_service.py --json
BENCH_service.json``), with ``--quick`` for the reduced CI matrix, or
through pytest (``pytest benchmarks/bench_service.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
from time import perf_counter

from repro.service import ServiceClient, build_specs, wait_for_socket

#: Concurrent clients in the dedupe and throughput phases.
N_CLIENTS = 4

#: Client count under ``--quick`` (the CI matrix).
QUICK_CLIENTS = 2

#: Worker processes the daemon is started with.
N_WORKERS = 2

#: p99 submit-to-result ceiling (s). Generous: it guards against the
#: daemon serializing clients or losing cells, not against machine load.
MAX_P99_SUBMIT_S = 60.0

#: The shared campaign: two policies, one cloudy day, dt chosen so a
#: cell is ~0.25 s — long enough that simultaneous submissions overlap.
BASE_CAMPAIGN = {"policies": "e-buff,baat", "days": 1, "dt": 300.0}


def _quantile(samples: list, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


class _Daemon:
    """One ``repro serve`` subprocess with a private cache directory."""

    def __init__(self, workers: int = N_WORKERS):
        self.tmp = tempfile.TemporaryDirectory(prefix="bench-service-")
        self.socket_path = os.path.join(self.tmp.name, "serve.sock")
        self.cache_dir = os.path.join(self.tmp.name, "cache")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                self.socket_path,
                "--cache-dir",
                self.cache_dir,
                "--workers",
                str(workers),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        wait_for_socket(self.socket_path, timeout_s=30.0)

    def stats(self) -> dict:
        with ServiceClient(socket_path=self.socket_path, timeout_s=30) as c:
            return c.status()["stats"]

    def stop(self) -> None:
        try:
            with ServiceClient(
                socket_path=self.socket_path, timeout_s=10
            ) as c:
                c.shutdown()
            self.proc.wait(timeout=10)
        except Exception:
            self.proc.kill()
            self.proc.wait(timeout=10)
        finally:
            self.tmp.cleanup()


def _submit_collect(
    socket_path: str,
    campaign: dict,
    barrier: threading.Barrier,
    out: list,
    slot: int,
) -> None:
    """One client thread: submit, record per-cell latencies + summary."""
    try:
        with ServiceClient(socket_path=socket_path, timeout_s=300) as client:
            barrier.wait(timeout=60)
            t0 = perf_counter()
            latencies = []
            done = None
            for line in client.submit(campaign):
                if line.get("kind") == "cell_result":
                    latencies.append(perf_counter() - t0)
                elif line.get("kind") in ("service_done", "service_error"):
                    done = line
            out[slot] = (done, latencies, perf_counter() - t0)
    except Exception as exc:  # noqa: BLE001 - surfaced by the caller
        out[slot] = (exc, [], 0.0)


def _fan_out(socket_path: str, campaigns: list) -> tuple:
    """Run one campaign per thread, released simultaneously.

    Returns (per-client ``service_done`` dicts, all cell latencies,
    wall seconds from release to last client done).
    """
    barrier = threading.Barrier(len(campaigns) + 1)
    out: list = [None] * len(campaigns)
    threads = [
        threading.Thread(
            target=_submit_collect,
            args=(socket_path, campaign, barrier, out, i),
        )
        for i, campaign in enumerate(campaigns)
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=60)
    t0 = perf_counter()
    for t in threads:
        t.join(timeout=300)
    wall_s = perf_counter() - t0
    dones, latencies = [], []
    for done, lats, _ in out:
        if isinstance(done, Exception):
            raise done
        if done is None or done.get("kind") != "service_done":
            raise RuntimeError(f"campaign submission failed: {done}")
        dones.append(done)
        latencies.extend(lats)
    return dones, latencies, wall_s


def _unique_cells(campaign: dict) -> int:
    keys = {spec.cache_key() for spec in build_specs(campaign)}
    keys.discard(None)
    return len(keys)


def measure(quick: bool = False) -> dict:
    """Drive one daemon through the dedupe / cache / throughput phases."""
    n_clients = QUICK_CLIENTS if quick else N_CLIENTS
    n_unique = _unique_cells(BASE_CAMPAIGN)
    daemon = _Daemon()
    try:
        # Phase 1: identical campaigns, simultaneous release.
        dones, lat_a, wall_a = _fan_out(
            daemon.socket_path, [dict(BASE_CAMPAIGN)] * n_clients
        )
        stats_a = daemon.stats()
        submitted_a = n_clients * n_unique
        dedupe_row = {
            "n_clients": n_clients,
            "n_submitted": submitted_a,
            "n_unique": n_unique,
            "executed": stats_a["executed"],
            "dedupe_hits": stats_a["dedupe_hits"],
            "cache_hits": stats_a["cache_hits"],
            "failed": stats_a["failed"],
            "wall_s": wall_a,
        }

        # Phase 2: one client resubmits; everything must be cached.
        dones_b, _, wall_b = _fan_out(
            daemon.socket_path, [dict(BASE_CAMPAIGN)]
        )
        stats_b = daemon.stats()
        cache_row = {
            "n_submitted": n_unique,
            "executed": stats_b["executed"] - stats_a["executed"],
            "cache_hits": stats_b["cache_hits"] - stats_a["cache_hits"],
            "dedupe_hits": stats_b["dedupe_hits"] - stats_a["dedupe_hits"],
            "cached_reported": dones_b[0]["cached"],
            "wall_s": wall_b,
        }

        # Phase 3: distinct seeds — no sharing; raw daemon throughput.
        campaigns = [
            {**BASE_CAMPAIGN, "seed": 1000 + i} for i in range(n_clients)
        ]
        _, lat_c, wall_c = _fan_out(daemon.socket_path, campaigns)
        stats_c = daemon.stats()
        executed_c = stats_c["executed"] - stats_b["executed"]
        throughput_row = {
            "n_clients": n_clients,
            "n_submitted": n_clients * n_unique,
            "executed": executed_c,
            "wall_s": wall_c,
            "cells_per_s": executed_c / wall_c if wall_c > 0 else 0.0,
        }
        final_stats = stats_c
    finally:
        daemon.stop()

    latencies = lat_a + lat_c
    return {
        "n_clients": n_clients,
        "n_workers": N_WORKERS,
        "campaign": dict(BASE_CAMPAIGN),
        "dedupe": dedupe_row,
        "cache": cache_row,
        "throughput": throughput_row,
        "cells_per_s": throughput_row["cells_per_s"],
        "cache_hit_rate": (
            cache_row["cache_hits"] / cache_row["n_submitted"]
            if cache_row["n_submitted"]
            else 0.0
        ),
        "dedupe_rate": (
            dedupe_row["dedupe_hits"] / (submitted_a - n_unique)
            if submitted_a > n_unique
            else 0.0
        ),
        "submit_p50_s": _quantile(latencies, 0.50),
        "submit_p95_s": _quantile(latencies, 0.95),
        "submit_p99_s": _quantile(latencies, 0.99),
        "daemon_stats": final_stats,
    }


def report(results: dict) -> str:
    dd, ca, th = results["dedupe"], results["cache"], results["throughput"]
    return "\n".join(
        [
            f"service bench: {results['n_clients']} clients, "
            f"{results['n_workers']} workers, campaign {results['campaign']}",
            f"  dedupe:     {dd['n_submitted']} cells submitted -> "
            f"{dd['executed']} executed, {dd['dedupe_hits']} deduped, "
            f"{dd['cache_hits']} cache hits in {dd['wall_s']:.3f} s",
            f"  cache:      {ca['n_submitted']} cells resubmitted -> "
            f"{ca['cache_hits']} cache hits, {ca['executed']} executed "
            f"in {ca['wall_s']:.3f} s",
            f"  throughput: {th['n_submitted']} unique cells -> "
            f"{th['cells_per_s']:.2f} cells/s ({th['wall_s']:.3f} s)",
            f"  latency:    p50 {results['submit_p50_s'] * 1e3:.1f} ms, "
            f"p95 {results['submit_p95_s'] * 1e3:.1f} ms, "
            f"p99 {results['submit_p99_s'] * 1e3:.1f} ms",
        ]
    )


def payload(results: dict) -> dict:
    """The machine-readable form (``BENCH_service.json``)."""
    dd, ca = results["dedupe"], results["cache"]
    followers = dd["n_submitted"] - dd["n_unique"]
    ok_single = dd["executed"] == dd["n_unique"] and dd["failed"] == 0
    ok_shared = dd["dedupe_hits"] + dd["cache_hits"] == followers
    ok_dedupe = dd["dedupe_hits"] >= 1
    ok_cache = (
        ca["cache_hits"] == ca["n_submitted"] and ca["executed"] == 0
    )
    ok_latency = results["submit_p99_s"] <= MAX_P99_SUBMIT_S
    return {
        **results,
        "max_p99_submit_s": MAX_P99_SUBMIT_S,
        "ok_single_execution": ok_single,
        "ok_shared": ok_shared,
        "ok_dedupe": ok_dedupe,
        "ok_cache_hits": ok_cache,
        "ok_latency": ok_latency,
        "ok": ok_single and ok_shared and ok_dedupe and ok_cache and ok_latency,
    }


GATES = (
    "ok_single_execution",
    "ok_shared",
    "ok_dedupe",
    "ok_cache_hits",
    "ok_latency",
)


def test_service_concurrency(record_property):
    results = measure(quick=True)
    print()
    print(report(results))
    data = payload(results)
    record_property("service_bench", data)
    for gate in GATES:
        assert data[gate], f"service bench gate {gate} failed: {data}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the measurements as JSON (the BENCH_service.json shape)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI matrix: {QUICK_CLIENTS} clients instead of {N_CLIENTS}",
    )
    parser.add_argument(
        "--perf-history", default=None, metavar="PATH",
        help="also append the measurements to a perf-history JSONL "
        "(see 'repro perf')",
    )
    args = parser.parse_args(argv)
    results = measure(quick=args.quick)
    print(report(results))
    data = payload(results)
    from repro.perf import PerfHistory, collect_meta

    document = {"service_bench": data, "meta": collect_meta()}
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
    if args.perf_history:
        record = PerfHistory(args.perf_history).record_payload(document)
        print(
            f"recorded {len(record.metrics)} metric(s) to {args.perf_history}"
        )
    if not data["ok"]:
        failed = [gate for gate in GATES if not data[gate]]
        print(
            f"FAIL: service bench gates failed: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
