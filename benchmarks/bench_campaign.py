"""Bench: the campaign runner itself — fan-out overhead and cache serving.

Two measurements on a fixed 4-scheme x 1-day sweep:

1. ``test_campaign_fresh`` — every run simulated (cache disabled by the
   suite conftest), using ``--campaign-workers`` processes;
2. ``test_campaign_cached`` — the same sweep served entirely from a
   warmed on-disk cache, which should be orders of magnitude faster.
"""


from repro.campaign import ResultCache, RunSpec, run_campaign
from repro.core.policies.factory import POLICY_NAMES
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass


def _specs():
    scenario = Scenario(dt_s=300.0)
    trace = scenario.trace_generator().day(DayClass.CLOUDY)
    return [
        RunSpec(scenario=scenario, trace=trace, policy=name)
        for name in POLICY_NAMES
    ]


def test_campaign_fresh(benchmark, request):
    workers = request.config.getoption("--campaign-workers")
    specs = _specs()
    report = benchmark.pedantic(
        run_campaign,
        args=(specs,),
        kwargs={"n_workers": workers, "cache": None},
        rounds=1,
        iterations=1,
    )
    print()
    print(f"  {report.summary_line()}")
    assert report.n_executed == len(specs)
    assert not report.failures


def test_campaign_cached(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "bench-cache")
    specs = _specs()
    warm = run_campaign(specs, n_workers=1, cache=cache)
    assert warm.n_executed == len(specs)

    report = benchmark.pedantic(
        run_campaign,
        args=(specs,),
        kwargs={"n_workers": 1, "cache": cache},
        rounds=1,
        iterations=1,
    )
    print()
    print(f"  {report.summary_line()}")
    assert report.n_cache_hits == len(specs)
    assert report.n_executed == 0
    for fresh, cached in zip(warm.outcomes, report.outcomes):
        assert cached.result.throughput == fresh.result.throughput
        assert [n.final_soc for n in cached.result.nodes] == [
            n.final_soc for n in fresh.result.nodes
        ]
