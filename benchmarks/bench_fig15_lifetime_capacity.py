"""Bench regenerating the paper's Fig. 15: battery lifetime vs server-to-battery ratio (paper: -35 % at 10 W/Ah).

Runs the experiment once under pytest-benchmark (wall-clock measured) and
prints the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the artifact inline.
"""

from repro.experiments import fig15_lifetime_capacity as experiment


def test_fig15_lifetime_capacity(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows, "experiment produced no rows"
    assert result.headline, "experiment produced no headline comparisons"
