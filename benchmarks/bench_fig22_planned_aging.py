"""Bench regenerating the paper's Fig. 22: productivity vs expected service life (paper: up to +33 %, humped).

Runs the experiment once under pytest-benchmark (wall-clock measured) and
prints the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the artifact inline.
"""

from repro.experiments import fig22_planned_aging as experiment


def test_fig22_planned_aging(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows, "experiment produced no rows"
    assert result.headline, "experiment produced no headline comparisons"
