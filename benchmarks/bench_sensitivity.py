"""Bench: sensitivity of BAAT's aging advantage to the reproduction's
calibration constants (robustness check called out in DESIGN.md).
"""

from repro.experiments import sensitivity as experiment


def test_sensitivity(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows
    assert result.headline
