"""Bench: the fleet stepper must beat the reference stepper at scale.

The vectorized struct-of-arrays fast path (``Scenario(stepper="fleet")``)
exists to make rack-scale sweeps tractable; it is bit-compatible with the
per-node reference stepper (tests/test_fleet_equivalence.py), so its only
reason to exist is speed. This bench times identical two-cloudy-day
e-Buff runs through both steppers at 6, 48 and 192 nodes and reports
steps/second, the fleet/reference speedup per size, and a per-phase
wall-clock breakdown (control / power / advance / record, via
:class:`~repro.obs.timers.StepPhaseTimers`) at the 48-node point.

Acceptance (gated in CI like ``BENCH_obs.json``): the fleet stepper is
at least :data:`MIN_SPEEDUP_AT_SCALE` times faster than the reference at
every size >= :data:`SCALE_THRESHOLD_NODES` nodes. The 6-node prototype
size is reported for context only — at that scale python overhead
dominates and parity is acceptable.

Run standalone (``python benchmarks/bench_engine.py --json
BENCH_engine.json``) or through pytest (``pytest
benchmarks/bench_engine.py -s``).
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter

from repro.core.policies.factory import make_policy
from repro.obs import REGISTRY
from repro.obs.timers import STEP_PHASES
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

#: Required fleet/reference speedup at and above SCALE_THRESHOLD_NODES.
MIN_SPEEDUP_AT_SCALE = 3.0

#: Node count from which the speedup requirement applies.
SCALE_THRESHOLD_NODES = 48

#: Fleet sizes measured: the paper's 6-node prototype, a rack, four racks.
SIZES = (6, 48, 192)

#: Best-of rounds per (size, stepper); fewer at the largest size where a
#: single reference run already dominates the bench's wall time.
REPEATS = {6: 3, 48: 3, 192: 2}

#: Two cloudy days at dt = 60 s: discharge, charge, and rest segments
#: all exercised, 2880 steps.
DAYS = (DayClass.CLOUDY, DayClass.CLOUDY)
DT_S = 60.0


def _scenario(n_nodes: int, stepper: str) -> Scenario:
    return Scenario(n_nodes=n_nodes, dt_s=DT_S, stepper=stepper, seed=11)


def _run_seconds(scenario: Scenario) -> tuple[float, int]:
    """Wall-clock seconds and step count for one full run."""
    trace = scenario.trace_generator().days(list(DAYS))
    sim = Simulation(scenario, make_policy("e-buff"), trace)
    t0 = perf_counter()
    sim.run()
    return perf_counter() - t0, len(trace.power_w)


def _phase_breakdown(n_nodes: int, stepper: str) -> dict:
    """Per-phase wall totals (s) from one registry-enabled run."""
    REGISTRY.enabled = True
    try:
        _run_seconds(_scenario(n_nodes, stepper))
        return {
            name: REGISTRY.histogram(f"phase/{name}").to_dict()
            for name in STEP_PHASES
        }
    finally:
        REGISTRY.enabled = False
        REGISTRY.reset()


def measure() -> dict:
    """Time both steppers at every size; best-of-``REPEATS`` per cell.

    Reference and fleet runs are interleaved within each round so slow
    machine-load drift hits both steppers equally.
    """
    _run_seconds(_scenario(6, "fleet"))  # warm-up: imports, numpy caches
    sizes = []
    for n_nodes in SIZES:
        best = {"reference": float("inf"), "fleet": float("inf")}
        steps = 0
        for _ in range(REPEATS[n_nodes]):
            for stepper in ("reference", "fleet"):
                seconds, steps = _run_seconds(_scenario(n_nodes, stepper))
                best[stepper] = min(best[stepper], seconds)
        sizes.append(
            {
                "n_nodes": n_nodes,
                "steps": steps,
                "reference_s": best["reference"],
                "fleet_s": best["fleet"],
                "reference_steps_per_s": steps / best["reference"],
                "fleet_steps_per_s": steps / best["fleet"],
                "speedup": best["reference"] / best["fleet"],
            }
        )
    breakdown = {
        stepper: _phase_breakdown(SCALE_THRESHOLD_NODES, stepper)
        for stepper in ("reference", "fleet")
    }
    return {"sizes": sizes, "phase_breakdown": breakdown}


def report(results: dict) -> str:
    lines = [
        f"{'nodes':>6} {'steps':>6} {'reference':>12} {'fleet':>12} "
        f"{'ref steps/s':>12} {'fleet steps/s':>14} {'speedup':>8}"
    ]
    for row in results["sizes"]:
        lines.append(
            f"{row['n_nodes']:>6} {row['steps']:>6} "
            f"{row['reference_s'] * 1e3:>10.1f} ms {row['fleet_s'] * 1e3:>10.1f} ms "
            f"{row['reference_steps_per_s']:>12.0f} "
            f"{row['fleet_steps_per_s']:>14.0f} "
            f"{row['speedup']:>7.2f}x"
        )
    lines.append(f"phase breakdown at {SCALE_THRESHOLD_NODES} nodes (wall s):")
    for stepper, phases in results["phase_breakdown"].items():
        parts = ", ".join(
            f"{name} {phases[name]['total']:.3f}" for name in STEP_PHASES
        )
        lines.append(f"  {stepper:>9}: {parts}")
    return "\n".join(lines)


def payload(results: dict) -> dict:
    """The machine-readable form of one measurement (``BENCH_engine.json``)."""
    at_scale = [
        row for row in results["sizes"] if row["n_nodes"] >= SCALE_THRESHOLD_NODES
    ]
    return {
        **results,
        "min_speedup_at_scale": MIN_SPEEDUP_AT_SCALE,
        "scale_threshold_nodes": SCALE_THRESHOLD_NODES,
        "ok": all(row["speedup"] >= MIN_SPEEDUP_AT_SCALE for row in at_scale),
    }


def test_engine_speedup(record_property):
    results = measure()
    print()
    print(report(results))
    data = payload(results)
    record_property("engine_bench", data)
    for row in results["sizes"]:
        if row["n_nodes"] >= SCALE_THRESHOLD_NODES:
            assert row["speedup"] >= MIN_SPEEDUP_AT_SCALE, (
                f"fleet speedup {row['speedup']:.2f}x at {row['n_nodes']} "
                f"nodes is below the {MIN_SPEEDUP_AT_SCALE}x floor"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the measurements as JSON (the BENCH_engine.json shape)",
    )
    args = parser.parse_args(argv)
    results = measure()
    print(report(results))
    data = payload(results)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"engine_bench": data}, fh, indent=2, sort_keys=True)
    if not data["ok"]:
        print(
            f"FAIL: fleet speedup below {MIN_SPEEDUP_AT_SCALE}x at "
            f">={SCALE_THRESHOLD_NODES} nodes",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
