"""Bench: the fleet stepper must beat the reference stepper at scale.

The vectorized struct-of-arrays fast path (``Scenario(stepper="fleet")``)
exists to make rack-scale sweeps tractable; it is bit-compatible with the
per-node reference stepper (tests/test_fleet_equivalence.py), so its only
reason to exist is speed. This bench times identical cloudy-day e-Buff
runs through both steppers at 6, 48, 192 and 1024 nodes, reports
steps/second and the fleet/reference speedup per size, then pushes the
fleet stepper alone to 4096 and 10240 nodes. A per-phase wall-clock
breakdown (control / power / advance / record, via
:class:`~repro.obs.timers.StepPhaseTimers`) is captured at the 48-node
point for both steppers and — the scaling curve — for the fleet stepper
under the BAAT policy at every :data:`CURVE_SIZES` point, because BAAT's
control pass exercises the vectorized decision kernels (slowdown
thresholds, Eq.-6 scores, consolidation planning) rather than e-Buff's
trivial buffering rule.

Acceptance (gated in CI like ``BENCH_obs.json``):

- fleet/reference speedup >= :data:`MIN_SPEEDUP_AT_SCALE` at every
  measured size >= :data:`SCALE_THRESHOLD_NODES` nodes, and >=
  :data:`MIN_SPEEDUP_AT_LARGE` at sizes >= :data:`LARGE_THRESHOLD_NODES`;
- on the fleet phase curve, control-phase wall time stays within
  :data:`MAX_CONTROL_OVER_POWER` times the power phase at
  >= :data:`LARGE_THRESHOLD_NODES` nodes;
- the curve is sublinear: from the first to the last curve point the
  per-step control time must grow strictly slower than the node count.

The 6-node prototype size is reported for context only — at that scale
python overhead dominates and parity is acceptable.

Run standalone (``python benchmarks/bench_engine.py --json
BENCH_engine.json``), with ``--quick`` for the reduced CI matrix, or
through pytest (``pytest benchmarks/bench_engine.py -s``).
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter

from repro.core.policies.factory import make_policy
from repro.obs import REGISTRY
from repro.obs.timers import STEP_PHASES
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

#: Required fleet/reference speedup at and above SCALE_THRESHOLD_NODES.
MIN_SPEEDUP_AT_SCALE = 3.0

#: Node count from which the speedup requirement applies.
SCALE_THRESHOLD_NODES = 48

#: Stricter speedup floor once vectorization should fully dominate.
MIN_SPEEDUP_AT_LARGE = 10.0

#: Node count from which the large-scale floor (and the control/power
#: ceiling on the phase curve) applies.
LARGE_THRESHOLD_NODES = 1024

#: On fleet curve rows at >= LARGE_THRESHOLD_NODES nodes the control
#: phase must cost at most this multiple of the power phase.
MAX_CONTROL_OVER_POWER = 5.0

#: Sizes run through BOTH steppers: prototype, rack, four racks, a pod.
SIZES = (6, 48, 192, 1024)

#: Sizes where the reference stepper is too slow to be worth timing;
#: the fleet stepper runs alone for throughput context.
FLEET_ONLY_SIZES = (4096, 10240)

#: Fleet-stepper sizes on the per-phase scaling curve.
CURVE_SIZES = (192, 1024, 4096, 10240)

#: Policy used for the scaling curve: BAAT's control pass actually runs
#: the batched decision kernels every control tick.
CURVE_POLICY = "baat"

#: Best-of rounds per (size, stepper); fewer at sizes where a single
#: reference run already dominates the bench's wall time.
REPEATS = {6: 3, 48: 3, 192: 2, 1024: 2}

DT_S = 60.0

#: Per-node solar sizing matching the 6-node default of 8 kWh/day, so
#: policy behaviour stays comparable as the fleet grows.
KWH_PER_NODE = 8.0 / 6.0


def _days(n_nodes: int) -> list[DayClass]:
    """Two cloudy days (2880 steps) up to four racks; one day (1440
    steps) beyond, where a single run is already tens of seconds."""
    n = 2 if n_nodes <= 192 else 1
    return [DayClass.CLOUDY] * n


def _scenario(n_nodes: int, stepper: str) -> Scenario:
    return Scenario(
        n_nodes=n_nodes,
        dt_s=DT_S,
        stepper=stepper,
        seed=11,
        sunny_day_kwh=KWH_PER_NODE * n_nodes,
    )


def _run_seconds(scenario: Scenario, policy: str = "e-buff") -> tuple[float, int]:
    """Wall-clock seconds and step count for one full run."""
    trace = scenario.trace_generator().days(_days(scenario.n_nodes))
    sim = Simulation(scenario, make_policy(policy), trace)
    t0 = perf_counter()
    sim.run()
    return perf_counter() - t0, len(trace.power_w)


def _phase_breakdown(n_nodes: int, stepper: str, policy: str = "e-buff") -> dict:
    """Per-phase wall totals (s) from one registry-enabled run."""
    REGISTRY.enabled = True
    try:
        _, steps = _run_seconds(_scenario(n_nodes, stepper), policy)
        phases = {
            name: REGISTRY.histogram(f"phase/{name}").to_dict()
            for name in STEP_PHASES
        }
        phases["steps"] = steps
        return phases
    finally:
        REGISTRY.enabled = False
        REGISTRY.reset()


def _curve_row(n_nodes: int) -> dict:
    """One fleet-stepper point on the control-phase scaling curve."""
    phases = _phase_breakdown(n_nodes, "fleet", CURVE_POLICY)
    steps = phases["steps"]
    control_s = phases["control"]["total"]
    power_s = phases["power"]["total"]
    return {
        "n_nodes": n_nodes,
        "policy": CURVE_POLICY,
        "steps": steps,
        "control_s": control_s,
        "power_s": power_s,
        "control_us_per_step": control_s / steps * 1e6,
        "control_over_power": control_s / power_s if power_s > 0 else float("inf"),
    }


def measure(quick: bool = False) -> dict:
    """Time both steppers at every size; best-of-``REPEATS`` per cell.

    Reference and fleet runs are interleaved within each round so slow
    machine-load drift hits both steppers equally. ``quick`` is the CI
    matrix: single rounds, no fleet-only sizes, curve capped at
    :data:`LARGE_THRESHOLD_NODES` nodes.
    """
    _run_seconds(_scenario(6, "fleet"))  # warm-up: imports, numpy caches
    sizes = []
    for n_nodes in SIZES:
        best = {"reference": float("inf"), "fleet": float("inf")}
        steps = 0
        for _ in range(1 if quick else REPEATS[n_nodes]):
            for stepper in ("reference", "fleet"):
                seconds, steps = _run_seconds(_scenario(n_nodes, stepper))
                best[stepper] = min(best[stepper], seconds)
        sizes.append(
            {
                "n_nodes": n_nodes,
                "steps": steps,
                "reference_s": best["reference"],
                "fleet_s": best["fleet"],
                "reference_steps_per_s": steps / best["reference"],
                "fleet_steps_per_s": steps / best["fleet"],
                "speedup": best["reference"] / best["fleet"],
            }
        )
    fleet_only = []
    if not quick:
        for n_nodes in FLEET_ONLY_SIZES:
            seconds, steps = _run_seconds(_scenario(n_nodes, "fleet"))
            fleet_only.append(
                {
                    "n_nodes": n_nodes,
                    "steps": steps,
                    "fleet_s": seconds,
                    "fleet_steps_per_s": steps / seconds,
                }
            )
    breakdown = {
        stepper: _phase_breakdown(SCALE_THRESHOLD_NODES, stepper)
        for stepper in ("reference", "fleet")
    }
    curve_sizes = [
        n for n in CURVE_SIZES if not quick or n <= LARGE_THRESHOLD_NODES
    ]
    curve = [_curve_row(n) for n in curve_sizes]
    return {
        "sizes": sizes,
        "fleet_only": fleet_only,
        "phase_breakdown": breakdown,
        "phase_curve": curve,
    }


def report(results: dict) -> str:
    lines = [
        f"{'nodes':>6} {'steps':>6} {'reference':>12} {'fleet':>12} "
        f"{'ref steps/s':>12} {'fleet steps/s':>14} {'speedup':>8}"
    ]
    for row in results["sizes"]:
        lines.append(
            f"{row['n_nodes']:>6} {row['steps']:>6} "
            f"{row['reference_s'] * 1e3:>10.1f} ms {row['fleet_s'] * 1e3:>10.1f} ms "
            f"{row['reference_steps_per_s']:>12.0f} "
            f"{row['fleet_steps_per_s']:>14.0f} "
            f"{row['speedup']:>7.2f}x"
        )
    for row in results["fleet_only"]:
        lines.append(
            f"{row['n_nodes']:>6} {row['steps']:>6} {'—':>12} "
            f"{row['fleet_s'] * 1e3:>10.1f} ms {'—':>12} "
            f"{row['fleet_steps_per_s']:>14.0f} {'—':>8}"
        )
    lines.append(f"phase breakdown at {SCALE_THRESHOLD_NODES} nodes (wall s):")
    for stepper, phases in results["phase_breakdown"].items():
        parts = ", ".join(
            f"{name} {phases[name]['total']:.3f}" for name in STEP_PHASES
        )
        lines.append(f"  {stepper:>9}: {parts}")
    lines.append(
        f"fleet control-phase scaling curve ({CURVE_POLICY} policy):"
    )
    for row in results["phase_curve"]:
        lines.append(
            f"  {row['n_nodes']:>6} nodes: control {row['control_s']:.3f} s "
            f"({row['control_us_per_step']:.0f} us/step), "
            f"power {row['power_s']:.3f} s, "
            f"control/power {row['control_over_power']:.2f}"
        )
    return "\n".join(lines)


def _curve_sublinear(curve: list[dict]) -> bool:
    """Per-step control time must grow slower than the node count over
    the measured range. The bound is end-to-end (first vs last curve
    point), not per adjacent pair: at the top sizes the vectorized
    passes are memory-bound and a single pair can brush linear within
    timing noise, while a reintroduced per-node python loop overshoots
    the end-to-end bound by orders of magnitude regardless."""
    if len(curve) < 2:
        return True
    first, last = curve[0], curve[-1]
    node_ratio = last["n_nodes"] / first["n_nodes"]
    time_ratio = last["control_us_per_step"] / max(
        first["control_us_per_step"], 1e-9
    )
    return time_ratio < node_ratio


def payload(results: dict) -> dict:
    """The machine-readable form of one measurement (``BENCH_engine.json``)."""
    at_scale = [
        row for row in results["sizes"] if row["n_nodes"] >= SCALE_THRESHOLD_NODES
    ]
    at_large = [
        row for row in results["sizes"] if row["n_nodes"] >= LARGE_THRESHOLD_NODES
    ]
    curve_large = [
        row
        for row in results["phase_curve"]
        if row["n_nodes"] >= LARGE_THRESHOLD_NODES
    ]
    ok_speedup = all(row["speedup"] >= MIN_SPEEDUP_AT_SCALE for row in at_scale)
    ok_speedup_large = all(
        row["speedup"] >= MIN_SPEEDUP_AT_LARGE for row in at_large
    )
    ok_control_over_power = all(
        row["control_over_power"] <= MAX_CONTROL_OVER_POWER for row in curve_large
    )
    ok_curve = _curve_sublinear(results["phase_curve"])
    return {
        **results,
        "min_speedup_at_scale": MIN_SPEEDUP_AT_SCALE,
        "scale_threshold_nodes": SCALE_THRESHOLD_NODES,
        "min_speedup_at_large": MIN_SPEEDUP_AT_LARGE,
        "large_threshold_nodes": LARGE_THRESHOLD_NODES,
        "max_control_over_power": MAX_CONTROL_OVER_POWER,
        "ok_speedup": ok_speedup,
        "ok_speedup_large": ok_speedup_large,
        "ok_control_over_power": ok_control_over_power,
        "ok_curve_sublinear": ok_curve,
        "ok": ok_speedup
        and ok_speedup_large
        and ok_control_over_power
        and ok_curve,
    }


def test_engine_speedup(record_property):
    results = measure(quick=True)
    print()
    print(report(results))
    data = payload(results)
    record_property("engine_bench", data)
    for row in results["sizes"]:
        if row["n_nodes"] >= SCALE_THRESHOLD_NODES:
            assert row["speedup"] >= MIN_SPEEDUP_AT_SCALE, (
                f"fleet speedup {row['speedup']:.2f}x at {row['n_nodes']} "
                f"nodes is below the {MIN_SPEEDUP_AT_SCALE}x floor"
            )
        if row["n_nodes"] >= LARGE_THRESHOLD_NODES:
            assert row["speedup"] >= MIN_SPEEDUP_AT_LARGE, (
                f"fleet speedup {row['speedup']:.2f}x at {row['n_nodes']} "
                f"nodes is below the {MIN_SPEEDUP_AT_LARGE}x large-scale floor"
            )
    assert data["ok_control_over_power"], (
        "fleet control phase exceeds "
        f"{MAX_CONTROL_OVER_POWER}x the power phase at scale"
    )
    assert data["ok_curve_sublinear"], (
        "fleet per-step control time is not sublinear in node count"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the measurements as JSON (the BENCH_engine.json shape)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI matrix: single rounds, no fleet-only sizes, curve capped "
        f"at {LARGE_THRESHOLD_NODES} nodes",
    )
    parser.add_argument(
        "--perf-history", default=None, metavar="PATH",
        help="also append the measurements to a perf-history JSONL "
        "(see 'repro perf')",
    )
    args = parser.parse_args(argv)
    results = measure(quick=args.quick)
    print(report(results))
    data = payload(results)
    from repro.perf import PerfHistory, collect_meta

    document = {"engine_bench": data, "meta": collect_meta()}
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
    if args.perf_history:
        record = PerfHistory(args.perf_history).record_payload(document)
        print(
            f"recorded {len(record.metrics)} metric(s) to {args.perf_history}"
        )
    if not data["ok"]:
        failed = [
            gate
            for gate in (
                "ok_speedup",
                "ok_speedup_large",
                "ok_control_over_power",
                "ok_curve_sublinear",
            )
            if not data[gate]
        ]
        print(f"FAIL: engine bench gates failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
