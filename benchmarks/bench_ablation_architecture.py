"""Bench: per-server vs rack-pool energy storage (paper Fig. 7).

Design-choice ablation called out in DESIGN.md; prints the comparison
table under pytest-benchmark.
"""

from repro.experiments import ablation_architecture as experiment


def test_ablation_architecture(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows
    assert result.headline
