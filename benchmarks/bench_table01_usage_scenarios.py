"""Bench regenerating the paper's Table 1: usage scenarios vs aging
speed and variation, made quantitative.
"""

from repro.experiments import table01_usage_scenarios as experiment


def test_table01_usage_scenarios(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows
    assert result.headline
