"""Bench: hybrid energy buffer (supercap + battery) vs bare battery —
the extension direction of the paper's reference [52] (HEB, ISCA'15).
"""

from repro.experiments import extension_hybrid_buffer as experiment


def test_extension_hybrid_buffer(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows
    assert result.headline
