"""Bench regenerating the paper's Fig. 18: low-SoC duration per scheme (paper: BAAT +47 % availability).

Runs the experiment once under pytest-benchmark (wall-clock measured) and
prints the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the artifact inline.
"""

from repro.experiments import fig18_low_soc as experiment


def test_fig18_low_soc(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows, "experiment produced no rows"
    assert result.headline, "experiment produced no headline comparisons"
