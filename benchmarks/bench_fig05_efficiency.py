"""Bench regenerating the paper's Fig. 5: six-month round-trip-efficiency loss (paper: ~8 %).

Runs the experiment once under pytest-benchmark (wall-clock measured) and
prints the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the artifact inline.
"""

from repro.experiments import fig05_efficiency as experiment


def test_fig05_efficiency(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows, "experiment produced no rows"
    assert result.headline, "experiment produced no headline comparisons"
