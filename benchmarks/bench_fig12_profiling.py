"""Bench regenerating the paper's Fig. 12: aging-metric runtime profile across sunny/cloudy/rainy days.

Runs the experiment once under pytest-benchmark (wall-clock measured) and
prints the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the artifact inline.
"""

from repro.experiments import fig12_profiling as experiment


def test_fig12_profiling(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows, "experiment produced no rows"
    assert result.headline, "experiment produced no headline comparisons"
