"""Bench regenerating the paper's Fig. 10: cycle life vs DoD for three manufacturers (paper: -50 % above 50 % DoD).

Runs the experiment once under pytest-benchmark (wall-clock measured) and
prints the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the artifact inline.
"""

from repro.experiments import fig10_cycle_life as experiment


def test_fig10_cycle_life(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows, "experiment produced no rows"
    assert result.headline, "experiment produced no headline comparisons"
