"""Bench: the telemetry layer must be near-free when disabled.

The `repro.obs` contract is that every instrumented call site guards on a
single ``enabled`` attribute, so a run with observability off (including
with only a :class:`~repro.obs.sinks.NullSink` attached — null sinks do
not enable the bus) pays only those branch checks over the pre-PR
baseline. This bench measures the step loop three ways:

- **disabled** — no sinks, registry off (the default state every run
  ships with; the pre-PR-equivalent path);
- **null sink** — a ``NullSink`` attached: must be indistinguishable
  from disabled (< 3 % overhead, the PR's acceptance criterion);
- **full tracing** — memory sink + metric registry + phase timers, for
  context on what enabling everything costs;
- **alerting** — full tracing plus a live :class:`~repro.obs.health.
  FleetHealthModel` on the bus and the default alert rules armed: the
  everything-on operator configuration ``repro health`` uses. Budgeted
  at :data:`MAX_ALERTING_OVERHEAD_PCT` over disabled.

Run standalone (``python benchmarks/bench_obs_overhead.py``) or through
pytest (``pytest benchmarks/bench_obs_overhead.py -s``). Standalone,
``--json PATH`` additionally writes the measurements machine-readably
(the shape CI's ``BENCH_obs.json`` gate consumes); under pytest the same
payload reaches the suite conftest via ``record_property`` and lands in
the ``--bench-json`` report.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter

from repro.core.policies.factory import make_policy
from repro.obs import ALERTS, BUS, REGISTRY, MemorySink, NullSink
from repro.obs.alerts import default_rules
from repro.obs.health import FleetHealthModel
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

#: Acceptance threshold for the null-sink path, percent.
MAX_NULL_OVERHEAD_PCT = 3.0

#: Budget for the everything-on path (tracing + health model + alert
#: rules), percent over disabled. Folding every battery sample twice
#: (tracker + health model) and running the watchdog observations is
#: real work; the budget (~2x the typical ~25 % measured cost, for CI
#: noise) says it must stay a modest fraction of the step loop itself.
MAX_ALERTING_OVERHEAD_PCT = 50.0

#: Timing rounds; a multiple of 4 so the rotating mode order puts every
#: mode in every position equally often. The per-mode minimum is
#: reported (least-noise estimator).
REPEATS = 8

#: Steps in the measured run: one day at dt = 120 s.
STEPS_PER_RUN = 720


def _step_loop_seconds(dt_s: float = 120.0) -> float:
    """Wall-clock seconds for one full single-day BAAT run."""
    scenario = Scenario(dt_s=dt_s, initial_fade=0.10, seed=11)
    trace = scenario.trace_generator().day(DayClass.CLOUDY)
    sim = Simulation(scenario, make_policy("baat"), trace)
    t0 = perf_counter()
    sim.run()
    return perf_counter() - t0


def measure() -> dict:
    """Time the three observability modes; returns seconds + overhead %.

    The modes are *interleaved* round-robin (rather than timed in
    sequential blocks) so slow drift in machine load hits all three
    equally; the per-mode minimum over ``REPEATS`` rounds is reported.
    """
    memory = MemorySink()

    def _disabled() -> float:
        BUS.clear_sinks()
        REGISTRY.enabled = False
        return _step_loop_seconds()

    def _null() -> float:
        BUS.clear_sinks()
        REGISTRY.enabled = False
        null = NullSink()
        BUS.add_sink(null)
        try:
            assert not BUS.enabled, "null sink must not enable the bus"
            return _step_loop_seconds()
        finally:
            BUS.remove_sink(null)

    def _full() -> float:
        BUS.clear_sinks()
        memory.clear()
        BUS.add_sink(memory)
        REGISTRY.enabled = True
        try:
            return _step_loop_seconds()
        finally:
            BUS.remove_sink(memory)
            REGISTRY.enabled = False
            REGISTRY.reset()

    def _alerting() -> float:
        BUS.clear_sinks()
        memory.clear()
        BUS.add_sink(memory)
        model = FleetHealthModel()
        BUS.add_sink(model)
        REGISTRY.enabled = True
        for rule in default_rules():
            ALERTS.add_rule(rule)
        ALERTS.enabled = True
        try:
            return _step_loop_seconds()
        finally:
            BUS.remove_sink(model)
            BUS.remove_sink(memory)
            REGISTRY.enabled = False
            REGISTRY.reset()
            ALERTS.enabled = False
            ALERTS.reset()
            ALERTS.rules.clear()

    _step_loop_seconds()  # warm-up: imports, numpy, allocator caches
    modes = [
        ("disabled", _disabled),
        ("null", _null),
        ("full", _full),
        ("alerting", _alerting),
    ]
    best = {name: float("inf") for name, _ in modes}
    n_modes = len(modes)
    for round_no in range(REPEATS):
        # Rotate the order each round so position bias (CPU frequency
        # ramps, allocator pressure from the previous mode) cancels.
        shift = round_no % n_modes
        for name, fn in modes[shift:] + modes[:shift]:
            best[name] = min(best[name], fn())

    disabled_s, null_s, full_s = best["disabled"], best["null"], best["full"]
    alerting_s = best["alerting"]
    return {
        "disabled_s": disabled_s,
        "null_s": null_s,
        "full_s": full_s,
        "alerting_s": alerting_s,
        "null_overhead_pct": 100.0 * (null_s - disabled_s) / disabled_s,
        "full_overhead_pct": 100.0 * (full_s - disabled_s) / disabled_s,
        "alerting_overhead_pct": 100.0 * (alerting_s - disabled_s) / disabled_s,
        "n_events_full": len(memory),
    }


def report(results: dict) -> str:
    return "\n".join(
        [
            f"disabled      : {results['disabled_s'] * 1e3:8.2f} ms/run",
            f"null sink     : {results['null_s'] * 1e3:8.2f} ms/run "
            f"({results['null_overhead_pct']:+.2f} %)",
            f"full tracing  : {results['full_s'] * 1e3:8.2f} ms/run "
            f"({results['full_overhead_pct']:+.2f} %, "
            f"{results['n_events_full']} events)",
            f"alerting      : {results['alerting_s'] * 1e3:8.2f} ms/run "
            f"({results['alerting_overhead_pct']:+.2f} %)",
        ]
    )


def payload(results: dict) -> dict:
    """The machine-readable form of one measurement (``BENCH_obs.json``)."""
    return {
        **results,
        "steps_per_run": STEPS_PER_RUN,
        "steps_per_s_disabled": STEPS_PER_RUN / results["disabled_s"],
        "steps_per_s_alerting": STEPS_PER_RUN / results["alerting_s"],
        "budgets": {
            "null_pct": MAX_NULL_OVERHEAD_PCT,
            "alerting_pct": MAX_ALERTING_OVERHEAD_PCT,
        },
        "ok_null": results["null_overhead_pct"] < MAX_NULL_OVERHEAD_PCT,
        "ok_alerting": (
            results["alerting_overhead_pct"] < MAX_ALERTING_OVERHEAD_PCT
        ),
    }


def test_obs_overhead_null_sink(record_property):
    results = measure()
    print()
    print(report(results))
    record_property("obs_overhead", payload(results))
    assert results["null_overhead_pct"] < MAX_NULL_OVERHEAD_PCT, (
        f"null-sink overhead {results['null_overhead_pct']:.2f} % exceeds "
        f"{MAX_NULL_OVERHEAD_PCT} %"
    )
    assert results["alerting_overhead_pct"] < MAX_ALERTING_OVERHEAD_PCT, (
        f"alerting overhead {results['alerting_overhead_pct']:.2f} % exceeds "
        f"{MAX_ALERTING_OVERHEAD_PCT} %"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the measurements as JSON (the BENCH_obs.json shape)",
    )
    args = parser.parse_args(argv)
    results = measure()
    print(report(results))
    data = payload(results)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"obs_overhead": data}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    print(
        f"null-sink overhead {'within' if data['ok_null'] else 'EXCEEDS'} "
        f"{MAX_NULL_OVERHEAD_PCT} % budget"
    )
    print(
        f"alerting overhead {'within' if data['ok_alerting'] else 'EXCEEDS'} "
        f"{MAX_ALERTING_OVERHEAD_PCT} % budget"
    )
    return 0 if data["ok_null"] and data["ok_alerting"] else 1


if __name__ == "__main__":
    sys.exit(main())
