"""Bench: the telemetry layer must be near-free when disabled.

The `repro.obs` contract is that every instrumented call site guards on a
single ``enabled`` attribute, so a run with observability off (including
with only a :class:`~repro.obs.sinks.NullSink` attached — null sinks do
not enable the bus) pays only those branch checks over the pre-PR
baseline. This bench measures the step loop three ways:

- **disabled** — no sinks, registry off (the default state every run
  ships with; the pre-PR-equivalent path);
- **null sink** — a ``NullSink`` attached: must be indistinguishable
  from disabled (< 3 % overhead, the PR's acceptance criterion);
- **full tracing** — memory sink + metric registry + phase timers, for
  context on what enabling everything costs;
- **alerting** — full tracing plus a live :class:`~repro.obs.health.
  FleetHealthModel` on the bus and the default alert rules armed: the
  everything-on operator configuration ``repro health`` uses. Budgeted
  at :data:`MAX_ALERTING_OVERHEAD_PCT` over disabled.

Standalone runs additionally measure the **enabled-path fleet mode**: a
1024-node (``--fleet-nodes`` for more) vectorized fleet run untraced vs
traced to a real JSONL file in columnar ``battery_frame`` telemetry
(``--telemetry full``) vs traced with legacy per-node sample events.
Two budgets gate this in CI: frame-mode tracing must stay within
:data:`MAX_FLEET_TRACED_RATIO` x the untraced fleet run, and the
frame-mode trace must be at least :data:`MIN_FRAME_SIZE_WIN` x smaller
on disk than the per-node-event equivalent.

Standalone runs also measure the **campaign monitor mode**: a pooled
multi-worker campaign (``cache=None`` so every cell executes) untraced
vs live-monitored — a :class:`~repro.obs.campaign_monitor.
CampaignMonitor` on the bus with the ``CaptureConfig.monitoring()``
worker tier, the ``repro campaign --watch --capture monitoring``
configuration. The whole monitoring stack (per-cell capture in the
worker at the sampled telemetry tier, health folding, alert episodes,
pickling the event buffer back, replay onto the parent bus, rollup
folding) must stay within :data:`MAX_CAMPAIGN_MONITOR_OVERHEAD_PCT` of
the untraced campaign. Lossless full-fidelity capture (``--trace`` at
the default tier) deliberately trades more overhead for replayable
traces and is covered by the single-run modes above, not this gate.

Run standalone (``python benchmarks/bench_obs_overhead.py``) or through
pytest (``pytest benchmarks/bench_obs_overhead.py -s``; the pytest path
skips the minutes-long fleet mode). Standalone, ``--json PATH``
additionally writes the measurements machine-readably (the shape CI's
``BENCH_obs.json`` gate consumes); under pytest the same payload reaches
the suite conftest via ``record_property`` and lands in the
``--bench-json`` report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from time import perf_counter

from repro.campaign import RunSpec, run_campaign
from repro.core.policies.factory import make_policy
from repro.datacenter.workloads import PAPER_WORKLOADS
from repro.obs import (
    ALERTS,
    BUS,
    REGISTRY,
    CampaignMonitor,
    CaptureConfig,
    JsonlSink,
    MemorySink,
    NullSink,
    TELEMETRY,
    TelemetryPolicy,
    parse_telemetry,
)
from repro.obs.alerts import default_rules
from repro.obs.health import FleetHealthModel
from repro.sim.engine import Simulation
from repro.sim.scenario import Scenario
from repro.solar.weather import DayClass

#: Acceptance threshold for the null-sink path, percent.
MAX_NULL_OVERHEAD_PCT = 3.0

#: Budget for the everything-on path (tracing + health model + alert
#: rules), percent over disabled. Folding every battery sample twice
#: (tracker + health model) and running the watchdog observations is
#: real work; the budget (~2x the typical ~25 % measured cost, for CI
#: noise) says it must stay a modest fraction of the step loop itself.
MAX_ALERTING_OVERHEAD_PCT = 50.0

#: Timing rounds; a multiple of 4 so the rotating mode order puts every
#: mode in every position equally often. The per-mode minimum is
#: reported (least-noise estimator).
REPEATS = 8

#: Steps in the measured run: one day at dt = 120 s.
STEPS_PER_RUN = 720

#: Enabled-path fleet mode: cluster size, step, repeats, and budgets.
#: One cloudy day at dt = 300 s -> 288 steps per run.
FLEET_NODES = 1024
FLEET_DT_S = 300.0
FLEET_STEPS = 288
FLEET_REPEATS = 3

#: A traced fleet run in frame telemetry must stay within this factor of
#: the untraced fleet run (the per-node-event status quo forfeits most
#: of the vectorization win).
MAX_FLEET_TRACED_RATIO = 1.5

#: A frame-mode trace must be at least this many times smaller on disk
#: than the equivalent per-node-event trace.
MIN_FRAME_SIZE_WIN = 10.0

#: Campaign monitor mode: pooled cells, workers, repeats, and budget.
#: The live-monitoring stack (capture fan-in at the monitoring tier +
#: live monitor rollups) over an untraced pooled campaign, percent.
CAMPAIGN_CELLS = 4
CAMPAIGN_WORKERS = 2
CAMPAIGN_REPEATS = 3
MAX_CAMPAIGN_MONITOR_OVERHEAD_PCT = 10.0


def _step_loop_seconds(dt_s: float = 120.0) -> float:
    """Wall-clock seconds for one full single-day BAAT run."""
    scenario = Scenario(dt_s=dt_s, initial_fade=0.10, seed=11)
    trace = scenario.trace_generator().day(DayClass.CLOUDY)
    sim = Simulation(scenario, make_policy("baat"), trace)
    t0 = perf_counter()
    sim.run()
    return perf_counter() - t0


def measure() -> dict:
    """Time the three observability modes; returns seconds + overhead %.

    The modes are *interleaved* round-robin (rather than timed in
    sequential blocks) so slow drift in machine load hits all three
    equally; the per-mode minimum over ``REPEATS`` rounds is reported.
    """
    memory = MemorySink()

    def _disabled() -> float:
        BUS.clear_sinks()
        REGISTRY.enabled = False
        return _step_loop_seconds()

    def _null() -> float:
        BUS.clear_sinks()
        REGISTRY.enabled = False
        null = NullSink()
        BUS.add_sink(null)
        try:
            assert not BUS.enabled, "null sink must not enable the bus"
            return _step_loop_seconds()
        finally:
            BUS.remove_sink(null)

    def _full() -> float:
        BUS.clear_sinks()
        memory.clear()
        BUS.add_sink(memory)
        REGISTRY.enabled = True
        try:
            return _step_loop_seconds()
        finally:
            BUS.remove_sink(memory)
            REGISTRY.enabled = False
            REGISTRY.reset()

    def _alerting() -> float:
        BUS.clear_sinks()
        memory.clear()
        BUS.add_sink(memory)
        model = FleetHealthModel()
        BUS.add_sink(model)
        REGISTRY.enabled = True
        for rule in default_rules():
            ALERTS.add_rule(rule)
        ALERTS.enabled = True
        try:
            return _step_loop_seconds()
        finally:
            BUS.remove_sink(model)
            BUS.remove_sink(memory)
            REGISTRY.enabled = False
            REGISTRY.reset()
            ALERTS.enabled = False
            ALERTS.reset()
            ALERTS.rules.clear()

    _step_loop_seconds()  # warm-up: imports, numpy, allocator caches
    modes = [
        ("disabled", _disabled),
        ("null", _null),
        ("full", _full),
        ("alerting", _alerting),
    ]
    best = {name: float("inf") for name, _ in modes}
    n_modes = len(modes)
    for round_no in range(REPEATS):
        # Rotate the order each round so position bias (CPU frequency
        # ramps, allocator pressure from the previous mode) cancels.
        shift = round_no % n_modes
        for name, fn in modes[shift:] + modes[:shift]:
            best[name] = min(best[name], fn())

    disabled_s, null_s, full_s = best["disabled"], best["null"], best["full"]
    alerting_s = best["alerting"]
    return {
        "disabled_s": disabled_s,
        "null_s": null_s,
        "full_s": full_s,
        "alerting_s": alerting_s,
        "null_overhead_pct": 100.0 * (null_s - disabled_s) / disabled_s,
        "full_overhead_pct": 100.0 * (full_s - disabled_s) / disabled_s,
        "alerting_overhead_pct": 100.0 * (alerting_s - disabled_s) / disabled_s,
        "n_events_full": len(memory),
    }


def _fleet_run_seconds(
    n_nodes: int, telemetry: str | None = None, trace_path: str | None = None
) -> float:
    """One fleet-stepper BAAT day; optionally traced to a JSONL file.

    The traced variant attaches a raw :class:`JsonlSink` (no registry,
    no alerting) so it measures exactly the telemetry cost on top of the
    fleet fast path — the configuration a scale run would use.
    """
    scenario = Scenario(
        n_nodes=n_nodes,
        dt_s=FLEET_DT_S,
        initial_fade=0.10,
        seed=11,
        stepper="fleet",
    )
    trace = scenario.trace_generator().day(DayClass.CLOUDY)
    sim = Simulation(scenario, make_policy("baat"), trace)
    sink = None
    if trace_path is not None:
        TELEMETRY.set_policy(parse_telemetry(telemetry or "full"))
        sink = JsonlSink(trace_path)
        BUS.add_sink(sink)
    t0 = perf_counter()
    try:
        sim.run()
        return perf_counter() - t0
    finally:
        if sink is not None:
            BUS.remove_sink(sink)
            sink.close()
            TELEMETRY.set_policy(TelemetryPolicy())


def measure_fleet(n_nodes: int = FLEET_NODES) -> dict:
    """Enabled-path overhead of frame telemetry on the fleet stepper."""
    _fleet_run_seconds(n_nodes)  # warm-up at this size
    untraced_s = min(_fleet_run_seconds(n_nodes) for _ in range(FLEET_REPEATS))
    with tempfile.TemporaryDirectory() as tmp:
        frame_s = float("inf")
        frame_bytes = 0
        for i in range(FLEET_REPEATS):
            path = os.path.join(tmp, f"frames{i}.jsonl")
            frame_s = min(frame_s, _fleet_run_seconds(n_nodes, "full", path))
            if i == 0:
                frame_bytes = os.path.getsize(path)
        events_path = os.path.join(tmp, "events.jsonl")
        # The per-node-event status quo is the slow case being replaced;
        # one round is plenty to place it.
        events_s = _fleet_run_seconds(n_nodes, "full-events", events_path)
        event_bytes = os.path.getsize(events_path)
    return {
        "n_nodes": n_nodes,
        "dt_s": FLEET_DT_S,
        "steps": FLEET_STEPS,
        "untraced_s": untraced_s,
        "frame_traced_s": frame_s,
        "events_traced_s": events_s,
        "traced_ratio": frame_s / untraced_s,
        "events_ratio": events_s / untraced_s,
        "frame_trace_bytes": frame_bytes,
        "event_trace_bytes": event_bytes,
        "size_win_x": event_bytes / frame_bytes if frame_bytes else 0.0,
    }


def _campaign_specs(n_cells: int = CAMPAIGN_CELLS) -> list:
    """Small, distinct, pool-eligible cells (policy-by-name, one day)."""
    workloads = tuple(
        PAPER_WORKLOADS[name]
        for name in (
            "web_serving",
            "data_analytics",
            "word_count",
            "nutch_indexing",
        )
    )
    scenario = Scenario(
        n_nodes=3,
        dt_s=300.0,
        manufacturing_variation=False,
        workloads=workloads,
        seed=11,
    )
    trace = scenario.trace_generator().day(DayClass.CLOUDY)
    policies = ("baat", "e-buff", "baat-s", "baat-h")
    return [
        RunSpec(
            scenario=scenario,
            trace=trace,
            policy=policies[i % len(policies)],
            label=f"bench-{policies[i % len(policies)]}-{i}",
        )
        for i in range(n_cells)
    ]


def _campaign_seconds(specs: list, monitored: bool = False) -> float:
    """One pooled campaign, optionally live-monitored (``--watch``).

    The monitored mode is exactly the CLI's watch path: a
    :class:`CampaignMonitor` bus sink (which by itself flips the bus
    enabled and selects the traced worker fan-in protocol — no JSONL
    file needed) with the lean ``CaptureConfig.monitoring()`` tier in
    the workers.
    """
    monitor = None
    if monitored:
        monitor = BUS.add_sink(CampaignMonitor())
    try:
        t0 = perf_counter()
        run_campaign(
            specs,
            n_workers=CAMPAIGN_WORKERS,
            cache=None,
            retries=0,
            capture=CaptureConfig.monitoring() if monitored else None,
        )
        return perf_counter() - t0
    finally:
        if monitor is not None:
            BUS.remove_sink(monitor)


def measure_campaign() -> dict:
    """Overhead of the live-monitoring stack on a pooled campaign."""
    specs = _campaign_specs()
    _campaign_seconds(specs)  # warm-up: pool spawn, imports in workers
    untraced_s = float("inf")
    monitored_s = float("inf")
    for _ in range(CAMPAIGN_REPEATS):
        # Interleave so load drift hits both modes equally.
        untraced_s = min(untraced_s, _campaign_seconds(specs))
        monitored_s = min(monitored_s, _campaign_seconds(specs, monitored=True))
    return {
        "n_cells": CAMPAIGN_CELLS,
        "n_workers": CAMPAIGN_WORKERS,
        "untraced_s": untraced_s,
        "monitored_s": monitored_s,
        "monitor_overhead_pct": (
            100.0 * (monitored_s - untraced_s) / untraced_s
        ),
    }


def campaign_report(campaign: dict) -> str:
    return "\n".join(
        [
            f"campaign {campaign['n_cells']} cells x "
            f"{campaign['n_workers']} workers:",
            f"  untraced      : {campaign['untraced_s'] * 1e3:8.1f} ms/run",
            f"  monitored     : {campaign['monitored_s'] * 1e3:8.1f} ms/run "
            f"({campaign['monitor_overhead_pct']:+.2f} %, budget "
            f"{MAX_CAMPAIGN_MONITOR_OVERHEAD_PCT} %)",
        ]
    )


def fleet_report(fleet: dict) -> str:
    return "\n".join(
        [
            f"fleet {fleet['n_nodes']} nodes, {fleet['steps']} steps:",
            f"  untraced      : {fleet['untraced_s'] * 1e3:8.1f} ms/run",
            f"  frame traced  : {fleet['frame_traced_s'] * 1e3:8.1f} ms/run "
            f"({fleet['traced_ratio']:.2f}x, budget "
            f"{MAX_FLEET_TRACED_RATIO}x)",
            f"  events traced : {fleet['events_traced_s'] * 1e3:8.1f} ms/run "
            f"({fleet['events_ratio']:.2f}x)",
            f"  trace size    : frames {fleet['frame_trace_bytes'] / 1e6:.2f} "
            f"MB vs events {fleet['event_trace_bytes'] / 1e6:.2f} MB "
            f"({fleet['size_win_x']:.1f}x smaller, floor "
            f"{MIN_FRAME_SIZE_WIN}x)",
        ]
    )


def report(results: dict) -> str:
    return "\n".join(
        [
            f"disabled      : {results['disabled_s'] * 1e3:8.2f} ms/run",
            f"null sink     : {results['null_s'] * 1e3:8.2f} ms/run "
            f"({results['null_overhead_pct']:+.2f} %)",
            f"full tracing  : {results['full_s'] * 1e3:8.2f} ms/run "
            f"({results['full_overhead_pct']:+.2f} %, "
            f"{results['n_events_full']} events)",
            f"alerting      : {results['alerting_s'] * 1e3:8.2f} ms/run "
            f"({results['alerting_overhead_pct']:+.2f} %)",
        ]
    )


def payload(
    results: dict, fleet: dict | None = None, campaign: dict | None = None
) -> dict:
    """The machine-readable form of one measurement (``BENCH_obs.json``)."""
    data = {
        **results,
        "steps_per_run": STEPS_PER_RUN,
        "steps_per_s_disabled": STEPS_PER_RUN / results["disabled_s"],
        "steps_per_s_alerting": STEPS_PER_RUN / results["alerting_s"],
        "budgets": {
            "null_pct": MAX_NULL_OVERHEAD_PCT,
            "alerting_pct": MAX_ALERTING_OVERHEAD_PCT,
            "fleet_traced_ratio": MAX_FLEET_TRACED_RATIO,
            "frame_size_win": MIN_FRAME_SIZE_WIN,
            "campaign_monitor_pct": MAX_CAMPAIGN_MONITOR_OVERHEAD_PCT,
        },
        "ok_null": results["null_overhead_pct"] < MAX_NULL_OVERHEAD_PCT,
        "ok_alerting": (
            results["alerting_overhead_pct"] < MAX_ALERTING_OVERHEAD_PCT
        ),
    }
    if fleet is not None:
        data["fleet"] = fleet
        data["ok_fleet_ratio"] = fleet["traced_ratio"] <= MAX_FLEET_TRACED_RATIO
        data["ok_fleet_size"] = fleet["size_win_x"] >= MIN_FRAME_SIZE_WIN
    if campaign is not None:
        data["campaign"] = campaign
        data["ok_campaign"] = (
            campaign["monitor_overhead_pct"]
            < MAX_CAMPAIGN_MONITOR_OVERHEAD_PCT
        )
    data["ok"] = all(v for k, v in data.items() if k.startswith("ok_"))
    return data


def test_obs_overhead_null_sink(record_property):
    results = measure()
    print()
    print(report(results))
    record_property("obs_overhead", payload(results))
    assert results["null_overhead_pct"] < MAX_NULL_OVERHEAD_PCT, (
        f"null-sink overhead {results['null_overhead_pct']:.2f} % exceeds "
        f"{MAX_NULL_OVERHEAD_PCT} %"
    )
    assert results["alerting_overhead_pct"] < MAX_ALERTING_OVERHEAD_PCT, (
        f"alerting overhead {results['alerting_overhead_pct']:.2f} % exceeds "
        f"{MAX_ALERTING_OVERHEAD_PCT} %"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the measurements as JSON (the BENCH_obs.json shape)",
    )
    parser.add_argument(
        "--fleet-nodes", type=int, default=FLEET_NODES, metavar="N",
        help="cluster size for the enabled-path fleet mode",
    )
    parser.add_argument(
        "--skip-fleet", action="store_true",
        help="skip the enabled-path fleet measurement",
    )
    parser.add_argument(
        "--skip-campaign", action="store_true",
        help="skip the campaign monitor measurement",
    )
    parser.add_argument(
        "--perf-history", default=None, metavar="PATH",
        help="also append the measurements to a perf-history JSONL "
        "(see 'repro perf')",
    )
    args = parser.parse_args(argv)
    results = measure()
    print(report(results))
    fleet = None
    if not args.skip_fleet:
        fleet = measure_fleet(args.fleet_nodes)
        print(fleet_report(fleet))
    campaign = None
    if not args.skip_campaign:
        campaign = measure_campaign()
        print(campaign_report(campaign))
    data = payload(results, fleet, campaign)
    from repro.perf import PerfHistory, collect_meta

    document = {"obs_overhead": data, "meta": collect_meta()}
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.perf_history:
        record = PerfHistory(args.perf_history).record_payload(document)
        print(
            f"recorded {len(record.metrics)} metric(s) to {args.perf_history}"
        )
    print(
        f"null-sink overhead {'within' if data['ok_null'] else 'EXCEEDS'} "
        f"{MAX_NULL_OVERHEAD_PCT} % budget"
    )
    print(
        f"alerting overhead {'within' if data['ok_alerting'] else 'EXCEEDS'} "
        f"{MAX_ALERTING_OVERHEAD_PCT} % budget"
    )
    if fleet is not None:
        print(
            f"fleet frame-traced ratio "
            f"{'within' if data['ok_fleet_ratio'] else 'EXCEEDS'} "
            f"{MAX_FLEET_TRACED_RATIO}x budget"
        )
        print(
            f"frame trace size win "
            f"{'meets' if data['ok_fleet_size'] else 'MISSES'} "
            f"{MIN_FRAME_SIZE_WIN}x floor"
        )
    if campaign is not None:
        print(
            f"campaign monitor overhead "
            f"{'within' if data['ok_campaign'] else 'EXCEEDS'} "
            f"{MAX_CAMPAIGN_MONITOR_OVERHEAD_PCT} % budget"
        )
    return 0 if data["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
