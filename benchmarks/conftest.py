"""Benchmark-suite configuration.

Each bench regenerates one paper figure/table (see DESIGN.md section 4)
and prints the resulting text table. Run with::

    pytest benchmarks/ --benchmark-only -s

Experiments route their simulations through the campaign runner, so the
suite accepts ``--campaign-workers N`` to fan each bench's sweep out
over N worker processes. The on-disk result cache is disabled for the
whole suite — benches must measure simulation, not pickle loads.
"""

import pytest

from repro.campaign import configure_cache, reset_cache_config, set_default_workers


def pytest_addoption(parser):
    parser.addoption(
        "--campaign-workers",
        type=int,
        default=1,
        help="worker processes for campaign-routed benches (default 1)",
    )


@pytest.fixture(autouse=True, scope="session")
def _bench_execution_defaults(request):
    configure_cache(enabled=False)
    set_default_workers(request.config.getoption("--campaign-workers"))
    yield
    reset_cache_config()
    set_default_workers(1)
