"""Benchmark-suite configuration.

Each bench regenerates one paper figure/table (see DESIGN.md section 4)
and prints the resulting text table. Run with::

    pytest benchmarks/ --benchmark-only -s

Experiments route their simulations through the campaign runner, so the
suite accepts ``--campaign-workers N`` to fan each bench's sweep out
over N worker processes. The on-disk result cache is disabled for the
whole suite — benches must measure simulation, not pickle loads.

``--bench-json PATH`` additionally writes a machine-readable report
(``BENCH_obs.json`` in CI): a provenance ``meta`` block (git sha,
branch, UTC timestamp, host/python/numpy fingerprint), per-bench wall
seconds, plus — when ``bench_obs_overhead`` ran — its full measurement
(mode timings, steps/s, overhead percentages, budgets and pass flags),
which CI gates on. ``--perf-history PATH`` appends the same report to a
perf-history JSONL (see ``repro perf``) so bench wall times accumulate a
longitudinal trajectory.
"""

import json
import time

import pytest

from repro.campaign import configure_cache, reset_cache_config, set_default_workers
from repro.perf import PerfHistory, collect_meta


def pytest_addoption(parser):
    parser.addoption(
        "--campaign-workers",
        type=int,
        default=1,
        help="worker processes for campaign-routed benches (default 1)",
    )
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write per-bench wall times (and the obs-overhead measurement) "
        "as JSON to PATH",
    )
    parser.addoption(
        "--perf-history",
        default=None,
        metavar="PATH",
        help="append the bench report to a perf-history JSONL "
        "(see 'repro perf')",
    )


@pytest.fixture(autouse=True, scope="session")
def _bench_execution_defaults(request):
    configure_cache(enabled=False)
    set_default_workers(request.config.getoption("--campaign-workers"))
    yield
    reset_cache_config()
    set_default_workers(1)


#: ``nodeid -> {wall_s, outcome}`` plus the ``_obs_overhead`` payload;
#: module-level because ``pytest_runtest_logreport`` has no config handle.
_REPORTS: dict = {}


def pytest_runtest_logreport(report):
    """Collect each bench's call-phase wall time and recorded payloads."""
    if report.when != "call":
        return
    entry = _REPORTS.setdefault(report.nodeid, {})
    entry["wall_s"] = report.duration
    entry["outcome"] = report.outcome
    for name, value in report.user_properties:
        if name == "obs_overhead":
            _REPORTS["_obs_overhead"] = value


def pytest_sessionfinish(session):
    path = session.config.getoption("--bench-json")
    history_path = session.config.getoption("--perf-history")
    if not path and not history_path:
        return
    overhead = _REPORTS.pop("_obs_overhead", None)
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "meta": collect_meta(),
        "benches": {k: v for k, v in sorted(_REPORTS.items())},
    }
    if overhead is not None:
        data["obs_overhead"] = overhead
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if history_path and data["benches"]:
        PerfHistory(history_path).record_payload(data)
