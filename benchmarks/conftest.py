"""Benchmark-suite configuration.

Each bench regenerates one paper figure/table (see DESIGN.md section 4)
and prints the resulting text table. Run with::

    pytest benchmarks/ --benchmark-only -s
"""
