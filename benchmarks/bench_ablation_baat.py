"""Bench: which of BAAT's mechanisms buys what (feature knockout).

Design-choice ablation called out in DESIGN.md; prints the comparison
table under pytest-benchmark.
"""

from repro.experiments import ablation_baat as experiment


def test_ablation_baat(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows
    assert result.headline
