"""Bench regenerating the paper's Fig. 3: six-month full-charge voltage droop (paper: ~9 %, accelerating).

Runs the experiment once under pytest-benchmark (wall-clock measured) and
prints the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the artifact inline.
"""

from repro.experiments import fig03_voltage as experiment


def test_fig03_voltage(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows, "experiment produced no rows"
    assert result.headline, "experiment produced no headline comparisons"
