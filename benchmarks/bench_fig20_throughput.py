"""Bench regenerating the paper's Fig. 20: daily compute throughput per scheme (paper: BAAT +28 % worst case).

Runs the experiment once under pytest-benchmark (wall-clock measured) and
prints the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the artifact inline.
"""

from repro.experiments import fig20_throughput as experiment


def test_fig20_throughput(benchmark):
    result = benchmark.pedantic(
        experiment.run, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    assert result.rows, "experiment produced no rows"
    assert result.headline, "experiment produced no headline comparisons"
