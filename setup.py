"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that environments whose setuptools predates PEP 660 editable-wheel support
(and that lack the ``wheel`` package, e.g. fully offline boxes) can still
do ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
